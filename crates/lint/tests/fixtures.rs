//! Fixture-driven self-test: every rule has positive fixtures (each
//! expected finding marked in-line) and negative fixtures (asserted
//! clean), and the engine's findings must match the markers *exactly* —
//! same file, same line, same rule, same multiplicity.
//!
//! Marker grammar, inside any fixture line:
//!
//! * `//~ rule [rule ...]` — expect those findings on this line;
//! * `//~^ rule [rule ...]` — expect them on the previous line (for
//!   findings on lines that are themselves lint directives).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use edn_lint::check_source;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parses `//~`/`//~^` markers into (line, rule-name) expectations.
fn expected_findings(source: &str) -> Vec<(usize, String)> {
    let mut expected = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let Some(at) = line.find("//~") else {
            continue;
        };
        let rest = &line[at + 3..];
        let (target, names) = match rest.strip_prefix('^') {
            Some(names) => (line_no - 1, names),
            None => (line_no, rest),
        };
        for name in names.split_whitespace() {
            expected.push((target, name.to_string()));
        }
    }
    expected.sort();
    expected
}

#[test]
fn every_fixture_flags_exactly_its_markers() {
    let root = fixtures_root();
    let mut files = Vec::new();
    rs_files(&root, &mut files);
    assert!(
        files.len() >= 15,
        "fixture tree looks truncated: {} files",
        files.len()
    );

    let mut checked_groups: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for file in &files {
        let relative = file.strip_prefix(&root).unwrap();
        let mut parts = relative
            .components()
            .map(|c| c.as_os_str().to_string_lossy());
        let group = parts.next().unwrap().into_owned();
        // The virtual path (what scopes the rules) is the path inside
        // the group directory, e.g. `bad/crates/core/src/hash_order.rs`.
        let virtual_path: Vec<String> = parts.map(|p| p.into_owned()).collect();
        let virtual_path = virtual_path.join("/");

        let source = std::fs::read_to_string(file).unwrap();
        let expected = expected_findings(&source);
        let mut actual: Vec<(usize, String)> = check_source(&virtual_path, &source)
            .into_iter()
            .map(|f| (f.line, f.rule.name().to_string()))
            .collect();
        actual.sort();
        assert_eq!(
            actual,
            expected,
            "fixture {} (virtual path {virtual_path}) disagrees with its markers",
            relative.display()
        );

        let entry = checked_groups.entry(group).or_insert((0, 0));
        if expected.is_empty() {
            entry.1 += 1; // negative fixture
        } else {
            entry.0 += 1; // positive fixture
        }
    }

    // Every rule group ships at least one positive and one negative
    // fixture — the acceptance criterion, enforced here so a deleted
    // fixture cannot silently weaken the suite.
    for group in [
        "determinism",
        "hot_path",
        "cast_audit",
        "unsafe_containment",
        "probe",
        "suppression",
    ] {
        let (positive, negative) = checked_groups
            .get(group)
            .unwrap_or_else(|| panic!("missing fixture group {group}"));
        assert!(
            *positive >= 1 && *negative >= 1,
            "group {group} needs >=1 positive and >=1 negative fixture, \
             has {positive}+/{negative}-"
        );
    }
}

#[test]
fn suppression_requires_reason() {
    // The contract stated directly, independent of fixture files: a
    // reasonless allow is a `suppression` finding AND leaves the
    // underlying finding alive; adding the reason silences both.
    let bad = "use std::collections::HashMap; // edn-lint: allow(determinism)\n";
    let findings = check_source("crates/core/src/x.rs", bad);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.rule.name() == "suppression"));
    assert!(findings.iter().any(|f| f.rule.name() == "determinism"));

    let good =
        "use std::collections::HashMap; // edn-lint: allow(determinism) -- membership only\n";
    assert!(check_source("crates/core/src/x.rs", good).is_empty());
}
