//! The meta-test: `edn_lint check --workspace -D all` over the *real*
//! repository must come back clean. This is the same assertion CI
//! makes, run in-process so `cargo test` alone proves the gate holds.

use std::path::{Path, PathBuf};

use edn_lint::{check_file, workspace_files};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn the_workspace_is_lint_clean() {
    let root = repo_root();
    let files = workspace_files(&root).expect("workspace walk");
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    // The walk must cover the crates and exclude vendor/fixtures.
    assert!(files
        .iter()
        .any(|f| f.ends_with("crates/core/src/engine.rs")));
    assert!(!files.iter().any(|f| f.starts_with("vendor")));
    assert!(!files.iter().any(|f| f.starts_with("crates/lint/fixtures")));

    let mut findings = Vec::new();
    for file in &files {
        findings.extend(check_file(&root, file).expect("readable source"));
    }
    assert!(
        findings.is_empty(),
        "the workspace must be lint-clean; {} finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
