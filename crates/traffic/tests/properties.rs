//! Property-based tests for the workload generators: every permutation
//! constructor yields a bijection, batches are well-formed, and partial
//! sampling preserves conflict-freedom.

use edn_traffic::{HotSpotTraffic, Permutation, UniformTraffic, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bijection(p: &Permutation) -> Result<(), TestCaseError> {
    let mut image: Vec<u64> = p.as_map().to_vec();
    image.sort_unstable();
    for (i, &v) in image.iter().enumerate() {
        prop_assert_eq!(v, i as u64);
    }
    Ok(())
}

proptest! {
    #[test]
    fn named_permutations_are_bijections(log_n in 0u32..=12, seed in any::<u64>()) {
        let n = 1u64 << log_n;
        assert_bijection(&Permutation::identity(n))?;
        assert_bijection(&Permutation::bit_reversal(n).unwrap())?;
        assert_bijection(&Permutation::perfect_shuffle(n).unwrap())?;
        assert_bijection(&Permutation::butterfly(n).unwrap())?;
        assert_bijection(&Permutation::reversal(n))?;
        assert_bijection(&Permutation::displacement(n, seed % n.max(1)))?;
        assert_bijection(&Permutation::random(n, &mut StdRng::seed_from_u64(seed)))?;
        if log_n % 2 == 0 {
            assert_bijection(&Permutation::transpose(n).unwrap())?;
        }
    }

    #[test]
    fn inverse_composes_to_identity(log_n in 0u32..=10, seed in any::<u64>()) {
        let n = 1u64 << log_n;
        let p = Permutation::random(n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(p.then(&p.inverse()).unwrap().is_identity());
        prop_assert!(p.inverse().then(&p).unwrap().is_identity());
    }

    #[test]
    fn composition_is_associative(log_n in 0u32..=8, s1 in any::<u64>(), s2 in any::<u64>()) {
        let n = 1u64 << log_n;
        let a = Permutation::random(n, &mut StdRng::seed_from_u64(s1));
        let b = Permutation::random(n, &mut StdRng::seed_from_u64(s2));
        let c = Permutation::reversal(n);
        let left = a.then(&b).unwrap().then(&c).unwrap();
        let right = a.then(&b.then(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn uniform_batches_are_well_formed(
        log_in in 1u32..=10,
        log_out in 1u32..=10,
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let inputs = 1u64 << log_in;
        let outputs = 1u64 << log_out;
        let mut traffic = UniformTraffic::new(inputs, outputs, rate);
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = traffic.next_batch(&mut rng);
        prop_assert!(batch.len() as u64 <= inputs);
        let mut previous: Option<u64> = None;
        for request in &batch {
            prop_assert!(request.source < inputs);
            prop_assert!(request.tag < outputs);
            if let Some(p) = previous {
                prop_assert!(request.source > p, "sources strictly increasing");
            }
            previous = Some(request.source);
        }
    }

    #[test]
    fn hotspot_batches_are_well_formed(
        log_n in 1u32..=10,
        rate in 0.0f64..=1.0,
        fraction in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n = 1u64 << log_n;
        let hot = seed % n;
        let mut traffic = HotSpotTraffic::new(n, n, rate, hot, fraction);
        let mut rng = StdRng::seed_from_u64(seed);
        for request in traffic.next_batch(&mut rng) {
            prop_assert!(request.source < n && request.tag < n);
        }
    }

    #[test]
    fn partial_permutation_requests_stay_conflict_free(
        log_n in 1u32..=10,
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n = 1u64 << log_n;
        let p = Permutation::random(n, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFFFF);
        let batch = p.to_partial_requests(rate, &mut rng);
        let mut tags: Vec<u64> = batch.iter().map(|r| r.tag).collect();
        let count = tags.len();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), count);
        for request in &batch {
            prop_assert_eq!(request.tag, p.apply(request.source));
        }
    }
}
