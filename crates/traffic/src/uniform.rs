//! Bernoulli-`r` uniform random traffic — the Section 3.2 request model.

use crate::Workload;
use edn_core::RouteRequest;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform independent traffic: at each cycle every input issues a request
/// with probability `rate`, addressed to an output drawn uniformly at
/// random (independently of everything else).
///
/// # Examples
///
/// ```
/// use edn_traffic::{UniformTraffic, Workload};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut traffic = UniformTraffic::new(64, 64, 0.5);
/// let mut rng = StdRng::seed_from_u64(1);
/// let batch = traffic.next_batch(&mut rng);
/// assert!(batch.len() <= 64);
/// for request in &batch {
///     assert!(request.source < 64 && request.tag < 64);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UniformTraffic {
    inputs: u64,
    outputs: u64,
    rate: f64,
}

impl UniformTraffic {
    /// Creates a uniform workload over `inputs x outputs` with request
    /// probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` or either dimension is zero.
    pub fn new(inputs: u64, outputs: u64, rate: f64) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "network dimensions must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&rate),
            "rate = {rate} is not a probability"
        );
        UniformTraffic {
            inputs,
            outputs,
            rate,
        }
    }

    /// The per-input request probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Workload for UniformTraffic {
    fn next_batch(&mut self, rng: &mut StdRng) -> Vec<RouteRequest> {
        let mut batch = Vec::new();
        self.fill_batch(&mut batch, rng);
        batch
    }

    fn fill_batch(&mut self, batch: &mut Vec<RouteRequest>, rng: &mut StdRng) {
        batch.clear();
        for source in 0..self.inputs {
            if rng.gen_bool(self.rate) {
                batch.push(RouteRequest::new(source, rng.gen_range(0..self.outputs)));
            }
        }
    }

    fn inputs(&self) -> u64 {
        self.inputs
    }

    fn outputs(&self) -> u64 {
        self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rate_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut silent = UniformTraffic::new(32, 32, 0.0);
        assert!(silent.next_batch(&mut rng).is_empty());
        let mut saturated = UniformTraffic::new(32, 32, 1.0);
        let batch = saturated.next_batch(&mut rng);
        assert_eq!(batch.len(), 32);
        // Sources are distinct and in order.
        for (i, request) in batch.iter().enumerate() {
            assert_eq!(request.source, i as u64);
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut traffic = UniformTraffic::new(256, 256, 0.3);
        let mut total = 0usize;
        let cycles = 200;
        for _ in 0..cycles {
            total += traffic.next_batch(&mut rng).len();
        }
        let empirical = total as f64 / (cycles * 256) as f64;
        assert!((empirical - 0.3).abs() < 0.02, "empirical rate {empirical}");
    }

    #[test]
    fn destinations_cover_the_output_space() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut traffic = UniformTraffic::new(64, 16, 1.0);
        let mut seen = [false; 16];
        for _ in 0..50 {
            for request in traffic.next_batch(&mut rng) {
                seen[request.tag as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "all outputs should be hit eventually"
        );
    }

    #[test]
    fn same_seed_same_workload() {
        let mut a = UniformTraffic::new(128, 128, 0.5);
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            assert_eq!(a.next_batch(&mut rng_a), b.next_batch(&mut rng_b));
        }
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_bad_rate() {
        UniformTraffic::new(8, 8, -0.1);
    }
}
