//! Hot-spot traffic — Non-Uniform Traffic Spots (NUTS).
//!
//! The paper motivates the EDN's multiple paths as a way to "reduce
//! conflicts or Non Uniform Traffic Spots (NUTS) that occur within the
//! network" (citing Lang & Kurisaki). The standard NUTS workload overlays
//! uniform traffic with a fraction of requests all aimed at one hot
//! output (a shared lock, a reduction root, a busy memory bank).

use crate::Workload;
use edn_core::RouteRequest;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform traffic with a hot output: every generated request goes to
/// `hot_output` with probability `hot_fraction`, otherwise to a uniformly
/// random output.
///
/// # Examples
///
/// ```
/// use edn_traffic::{HotSpotTraffic, Workload};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut traffic = HotSpotTraffic::new(64, 64, 1.0, 7, 0.25);
/// let mut rng = StdRng::seed_from_u64(1);
/// let batch = traffic.next_batch(&mut rng);
/// let hot = batch.iter().filter(|r| r.tag == 7).count();
/// assert!(hot >= 8, "about a quarter of 64 requests should hit the spot");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpotTraffic {
    inputs: u64,
    outputs: u64,
    rate: f64,
    hot_output: u64,
    hot_fraction: f64,
}

impl HotSpotTraffic {
    /// Creates a hot-spot workload.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `hot_fraction` is not in `[0, 1]`, if the
    /// dimensions are zero, or if `hot_output` is out of range.
    pub fn new(inputs: u64, outputs: u64, rate: f64, hot_output: u64, hot_fraction: f64) -> Self {
        assert!(
            inputs > 0 && outputs > 0,
            "network dimensions must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&rate),
            "rate = {rate} is not a probability"
        );
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction = {hot_fraction} is not a probability"
        );
        assert!(hot_output < outputs, "hot output {hot_output} out of range");
        HotSpotTraffic {
            inputs,
            outputs,
            rate,
            hot_output,
            hot_fraction,
        }
    }

    /// The hot output index.
    pub fn hot_output(&self) -> u64 {
        self.hot_output
    }

    /// The fraction of requests aimed at the hot output.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }
}

impl Workload for HotSpotTraffic {
    fn next_batch(&mut self, rng: &mut StdRng) -> Vec<RouteRequest> {
        let mut batch = Vec::new();
        self.fill_batch(&mut batch, rng);
        batch
    }

    fn fill_batch(&mut self, batch: &mut Vec<RouteRequest>, rng: &mut StdRng) {
        batch.clear();
        for source in 0..self.inputs {
            if !rng.gen_bool(self.rate) {
                continue;
            }
            let tag = if rng.gen_bool(self.hot_fraction) {
                self.hot_output
            } else {
                rng.gen_range(0..self.outputs)
            };
            batch.push(RouteRequest::new(source, tag));
        }
    }

    fn inputs(&self) -> u64 {
        self.inputs
    }

    fn outputs(&self) -> u64 {
        self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hot_fraction_zero_is_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut traffic = HotSpotTraffic::new(128, 128, 1.0, 0, 0.0);
        let batch = traffic.next_batch(&mut rng);
        assert_eq!(batch.len(), 128);
        // Output 0 should receive about 1 request, certainly not dozens.
        let to_zero = batch.iter().filter(|r| r.tag == 0).count();
        assert!(to_zero < 10);
    }

    #[test]
    fn hot_fraction_one_is_single_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut traffic = HotSpotTraffic::new(64, 64, 1.0, 13, 1.0);
        let batch = traffic.next_batch(&mut rng);
        assert!(batch.iter().all(|r| r.tag == 13));
    }

    #[test]
    fn empirical_hot_share_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut traffic = HotSpotTraffic::new(256, 256, 1.0, 99, 0.2);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..100 {
            for request in traffic.next_batch(&mut rng) {
                total += 1;
                if request.tag == 99 {
                    hot += 1;
                }
            }
        }
        // Hot share = fraction + uniform leakage 0.8/256 ~ 0.203.
        let share = hot as f64 / total as f64;
        assert!((share - 0.203).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn respects_request_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut traffic = HotSpotTraffic::new(512, 512, 0.25, 0, 0.5);
        let mut total = 0usize;
        for _ in 0..100 {
            total += traffic.next_batch(&mut rng).len();
        }
        let rate = total as f64 / (100.0 * 512.0);
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_hot_output() {
        HotSpotTraffic::new(8, 8, 1.0, 8, 0.5);
    }
}
