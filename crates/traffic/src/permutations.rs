//! Permutation workloads — the SIMD routing model of Sections 3.2.1 and 5.
//!
//! In an SIMD machine all processors communicate at once, so the router's
//! job is to realize an arbitrary *permutation* quickly. [`Permutation`]
//! wraps a validated one-to-one destination map together with the named
//! structured permutations that classically stress multistage networks
//! (identity — the paper's Figure 5 worst case —, bit reversal, perfect
//! shuffle, transpose, butterfly, displacement).

use edn_core::RouteRequest;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A validated permutation of `0..n`, usable as a one-cycle workload.
///
/// # Examples
///
/// ```
/// use edn_traffic::Permutation;
///
/// let p = Permutation::bit_reversal(8).unwrap();
/// assert_eq!(p.apply(1), 4); // 001 -> 100
/// assert!(p.then(&p).unwrap().is_identity()); // self-inverse
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<u64>,
}

impl Permutation {
    /// Wraps an explicit destination map after validating it is a
    /// permutation of `0..map.len()`.
    ///
    /// Returns `None` if `map` is not a permutation.
    pub fn from_map(map: Vec<u64>) -> Option<Self> {
        let n = map.len() as u64;
        let mut seen = vec![false; map.len()];
        for &dest in &map {
            if dest >= n || seen[dest as usize] {
                return None;
            }
            seen[dest as usize] = true;
        }
        Some(Permutation { map })
    }

    /// The identity permutation of `0..n` — the paper's Figure 5 stress
    /// case for EDNs whose first-stage switches span many inputs.
    pub fn identity(n: u64) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn random<R: Rng>(n: u64, rng: &mut R) -> Self {
        let mut map: Vec<u64> = (0..n).collect();
        map.shuffle(rng);
        Permutation { map }
    }

    /// Re-randomizes this permutation in place over the same domain,
    /// drawing the identical RNG stream as [`Permutation::random`] but
    /// without allocating.
    ///
    /// This is the per-cycle primitive behind the Monte-Carlo permutation
    /// workloads: one `Permutation` is built once and reshuffled every
    /// cycle.
    pub fn randomize_in_place<R: Rng>(&mut self, rng: &mut R) {
        for (i, slot) in self.map.iter_mut().enumerate() {
            *slot = i as u64;
        }
        self.map.shuffle(rng);
    }

    /// Bit reversal on `log2(n)`-bit labels. Requires `n` to be a power of
    /// two; returns `None` otherwise.
    pub fn bit_reversal(n: u64) -> Option<Self> {
        if n == 0 || !n.is_power_of_two() {
            return None;
        }
        let bits = n.trailing_zeros();
        let map = (0..n)
            .map(|x| {
                if bits == 0 {
                    x
                } else {
                    x.reverse_bits() >> (64 - bits)
                }
            })
            .collect();
        Some(Permutation { map })
    }

    /// The perfect shuffle (left cyclic shift of the label bits by one).
    /// Requires `n` to be a power of two; returns `None` otherwise.
    pub fn perfect_shuffle(n: u64) -> Option<Self> {
        if n == 0 || !n.is_power_of_two() {
            return None;
        }
        let bits = n.trailing_zeros();
        let map = (0..n)
            .map(|x| {
                if bits <= 1 {
                    x
                } else {
                    ((x << 1) | (x >> (bits - 1))) & (n - 1)
                }
            })
            .collect();
        Some(Permutation { map })
    }

    /// Matrix transpose: swaps the high and low halves of the label bits.
    /// Requires `n = 4^k`; returns `None` otherwise.
    pub fn transpose(n: u64) -> Option<Self> {
        if n == 0 || !n.is_power_of_two() || !n.trailing_zeros().is_multiple_of(2) {
            return None;
        }
        let bits = n.trailing_zeros();
        let half = bits / 2;
        let low_mask = (1u64 << half) - 1;
        let map = (0..n)
            .map(|x| ((x & low_mask) << half) | (x >> half))
            .collect();
        Some(Permutation { map })
    }

    /// Butterfly: swaps the most and least significant label bits.
    /// Requires `n` to be a power of two; returns `None` otherwise.
    pub fn butterfly(n: u64) -> Option<Self> {
        if n == 0 || !n.is_power_of_two() {
            return None;
        }
        let bits = n.trailing_zeros();
        if bits < 2 {
            return Some(Permutation::identity(n));
        }
        let top = bits - 1;
        let map = (0..n)
            .map(|x| {
                let lsb = x & 1;
                let msb = (x >> top) & 1;
                (x & !(1 | (1 << top))) | (lsb << top) | msb
            })
            .collect();
        Some(Permutation { map })
    }

    /// Uniform displacement: `x -> (x + k) mod n`.
    pub fn displacement(n: u64, k: u64) -> Self {
        Permutation {
            map: (0..n).map(|x| (x + k) % n).collect(),
        }
    }

    /// Vector reversal: `x -> n - 1 - x`.
    pub fn reversal(n: u64) -> Self {
        Permutation {
            map: (0..n).map(|x| n - 1 - x).collect(),
        }
    }

    /// Domain size `n`.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if every element maps to itself.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &d)| i as u64 == d)
    }

    /// The image of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn apply(&self, x: u64) -> u64 {
        self.map[x as usize]
    }

    /// The underlying destination map.
    pub fn as_map(&self) -> &[u64] {
        &self.map
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u64; self.map.len()];
        for (i, &d) in self.map.iter().enumerate() {
            inv[d as usize] = i as u64;
        }
        Permutation { map: inv }
    }

    /// Composition `other ∘ self` (apply `self` first).
    ///
    /// Returns `None` if the domains differ.
    pub fn then(&self, other: &Permutation) -> Option<Permutation> {
        if self.map.len() != other.map.len() {
            return None;
        }
        Some(Permutation {
            map: self.map.iter().map(|&d| other.map[d as usize]).collect(),
        })
    }

    /// This permutation as a full one-cycle request batch.
    pub fn to_requests(&self) -> Vec<RouteRequest> {
        let mut batch = Vec::new();
        self.fill_requests(&mut batch);
        batch
    }

    /// Writes the full one-cycle request batch into `batch` (cleared
    /// first), reusing its capacity.
    pub fn fill_requests(&self, batch: &mut Vec<RouteRequest>) {
        batch.clear();
        batch.extend(
            self.map
                .iter()
                .enumerate()
                .map(|(source, &tag)| RouteRequest::new(source as u64, tag)),
        );
    }

    /// Fills `packed` (cleared first, capacity reused) with one full
    /// request batch per seed: up to [`edn_core::MAX_LANES`] independent
    /// uniformly random permutations laid out lane-major, lane `i`
    /// occupying `packed[i * n .. (i + 1) * n]` for `n = self.len()`.
    ///
    /// Each lane draws its own RNG stream `R::seed_from_u64(seeds[i])`
    /// (the coordinate seed scheme the Monte-Carlo sweeps use), so lane
    /// `i`'s segment is **bit-identical** to the scalar sequence
    /// [`Permutation::randomize_in_place`] with that stream followed by
    /// [`Permutation::fill_requests`] — lanes are pure functions of
    /// their seeds, independent of how a sweep partitions the seed axis
    /// across worker threads. `self` is the reshuffle scratch; it is
    /// left holding the last lane's permutation.
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len() > edn_core::MAX_LANES`.
    pub fn fill_requests_lanes<R: Rng + SeedableRng>(
        &mut self,
        seeds: &[u64],
        packed: &mut Vec<RouteRequest>,
    ) {
        assert!(
            seeds.len() <= edn_core::MAX_LANES,
            "lane count {} out of range (0..={})",
            seeds.len(),
            edn_core::MAX_LANES
        );
        packed.clear();
        packed.reserve(self.map.len() * seeds.len());
        for &seed in seeds {
            let mut rng = R::seed_from_u64(seed);
            self.randomize_in_place(&mut rng);
            packed.extend(
                self.map
                    .iter()
                    .enumerate()
                    .map(|(source, &tag)| RouteRequest::new(source as u64, tag)),
            );
        }
    }

    /// A partial batch: each source participates with probability `rate`
    /// (still conflict-free on outputs, being a sub-permutation).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn to_partial_requests<R: Rng>(&self, rate: f64, rng: &mut R) -> Vec<RouteRequest> {
        let mut batch = Vec::new();
        self.fill_partial_requests(rate, rng, &mut batch);
        batch
    }

    /// As [`Permutation::to_partial_requests`], writing into `batch`
    /// (cleared first) and reusing its capacity.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn fill_partial_requests<R: Rng>(
        &self,
        rate: f64,
        rng: &mut R,
        batch: &mut Vec<RouteRequest>,
    ) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "rate = {rate} is not a probability"
        );
        batch.clear();
        batch.extend(
            self.map
                .iter()
                .enumerate()
                .filter(|_| rng.gen_bool(rate))
                .map(|(source, &tag)| RouteRequest::new(source as u64, tag)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_is_permutation(p: &Permutation) {
        let mut sorted: Vec<u64> = p.as_map().to_vec();
        sorted.sort_unstable();
        let expected: Vec<u64> = (0..p.len()).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn named_permutations_are_bijections() {
        let n = 64;
        let all = [
            Permutation::identity(n),
            Permutation::bit_reversal(n).unwrap(),
            Permutation::perfect_shuffle(n).unwrap(),
            Permutation::transpose(n).unwrap(),
            Permutation::butterfly(n).unwrap(),
            Permutation::displacement(n, 17),
            Permutation::reversal(n),
            Permutation::random(n, &mut StdRng::seed_from_u64(5)),
        ];
        for p in &all {
            assert_is_permutation(p);
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn bit_reversal_is_self_inverse() {
        let p = Permutation::bit_reversal(256).unwrap();
        assert!(p.then(&p).unwrap().is_identity());
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn butterfly_is_self_inverse() {
        let p = Permutation::butterfly(128).unwrap();
        assert!(p.then(&p).unwrap().is_identity());
    }

    #[test]
    fn transpose_is_self_inverse() {
        let p = Permutation::transpose(256).unwrap();
        assert!(p.then(&p).unwrap().is_identity());
        // 16x16 matrix: element (row 3, col 5) goes to (row 5, col 3).
        assert_eq!(p.apply(3 * 16 + 5), 5 * 16 + 3);
    }

    #[test]
    fn shuffle_inverse_composes_to_identity() {
        let p = Permutation::perfect_shuffle(64).unwrap();
        assert!(p.then(&p.inverse()).unwrap().is_identity());
        // log2(64) = 6 applications of the shuffle is the identity.
        let mut acc = Permutation::identity(64);
        for _ in 0..6 {
            acc = acc.then(&p).unwrap();
        }
        assert!(acc.is_identity());
    }

    #[test]
    fn displacement_wraps() {
        let p = Permutation::displacement(10, 3);
        assert_eq!(p.apply(9), 2);
        assert_eq!(p.apply(0), 3);
        assert_is_permutation(&p);
    }

    #[test]
    fn from_map_validates() {
        assert!(Permutation::from_map(vec![1, 0, 2]).is_some());
        assert!(Permutation::from_map(vec![1, 1, 2]).is_none());
        assert!(Permutation::from_map(vec![0, 3]).is_none());
        assert!(Permutation::from_map(Vec::new()).is_some());
    }

    #[test]
    fn power_of_two_constructors_reject_other_sizes() {
        assert!(Permutation::bit_reversal(12).is_none());
        assert!(Permutation::perfect_shuffle(0).is_none());
        assert!(Permutation::transpose(8).is_none()); // 8 is not 4^k
        assert!(Permutation::butterfly(6).is_none());
    }

    #[test]
    fn requests_carry_the_map() {
        let p = Permutation::reversal(8);
        let requests = p.to_requests();
        assert_eq!(requests.len(), 8);
        for request in &requests {
            assert_eq!(request.tag, 7 - request.source);
        }
    }

    #[test]
    fn partial_requests_subsample_without_conflicts() {
        let p = Permutation::random(128, &mut StdRng::seed_from_u64(11));
        let mut rng = StdRng::seed_from_u64(12);
        let batch = p.to_partial_requests(0.5, &mut rng);
        assert!(batch.len() < 128 && !batch.is_empty());
        let mut tags: Vec<u64> = batch.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len(),
            batch.len(),
            "sub-permutation must stay conflict-free"
        );
    }

    #[test]
    fn randomize_in_place_matches_random_and_keeps_capacity() {
        let mut a = Permutation::identity(128);
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        a.randomize_in_place(&mut rng_a);
        let b = Permutation::random(128, &mut rng_b);
        assert_eq!(a, b, "in-place reshuffle must draw the same stream");
        assert_is_permutation(&a);
        // Reshuffling again yields a fresh (different) permutation.
        a.randomize_in_place(&mut rng_a);
        assert_is_permutation(&a);
        assert_ne!(a, b);
    }

    #[test]
    fn fill_requests_reuses_buffer() {
        let p = Permutation::reversal(16);
        let mut batch = Vec::new();
        p.fill_requests(&mut batch);
        assert_eq!(batch, p.to_requests());
        let capacity = batch.capacity();
        p.fill_requests(&mut batch);
        assert_eq!(batch.capacity(), capacity);
        let mut rng = StdRng::seed_from_u64(5);
        p.fill_partial_requests(0.5, &mut rng, &mut batch);
        assert!(batch.len() <= 16);
    }

    #[test]
    fn fill_requests_lanes_matches_scalar_per_seed_fills() {
        // Every lane's packed segment must be bit-identical to the scalar
        // randomize_in_place + fill_requests sequence under that seed.
        let n = 64u64;
        let seeds: Vec<u64> = (0..17).map(|s| s * 13 + 1).collect();
        let mut scratch = Permutation::identity(n);
        let mut packed = Vec::new();
        scratch.fill_requests_lanes::<StdRng>(&seeds, &mut packed);
        assert_eq!(packed.len(), n as usize * seeds.len());
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut scalar = Permutation::identity(n);
            scalar.randomize_in_place(&mut StdRng::seed_from_u64(seed));
            let mut batch = Vec::new();
            scalar.fill_requests(&mut batch);
            let segment = &packed[lane * n as usize..(lane + 1) * n as usize];
            assert_eq!(segment, batch.as_slice(), "lane {lane} seed {seed}");
            let tags: Vec<u64> = segment.iter().map(|r| r.tag).collect();
            assert_is_permutation(&Permutation::from_map(tags).expect("lane is a permutation"));
        }
        // The buffer is reused, not regrown.
        let capacity = packed.capacity();
        scratch.fill_requests_lanes::<StdRng>(&seeds, &mut packed);
        assert_eq!(packed.capacity(), capacity);
    }

    #[test]
    fn fill_requests_lanes_is_deterministic_across_thread_partitions() {
        // Lanes are pure functions of their seeds, so a sweep may split
        // the seed axis across any worker count and reassemble the same
        // packed buffer. Emulate --threads 1/2/4: partition the seeds,
        // fill each partition on its own thread with its own scratch
        // permutation, and compare the reassembled buffers.
        let n = 32u64;
        let seeds: Vec<u64> = (0..24).map(|s| s * 7 + 5).collect();
        let mut reference = Vec::new();
        Permutation::identity(n).fill_requests_lanes::<StdRng>(&seeds, &mut reference);
        for threads in [1usize, 2, 4] {
            let chunk = seeds.len().div_ceil(threads);
            let mut parts: Vec<Vec<RouteRequest>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = seeds
                    .chunks(chunk)
                    .map(|chunk_seeds| {
                        scope.spawn(move || {
                            let mut packed = Vec::new();
                            Permutation::identity(n)
                                .fill_requests_lanes::<StdRng>(chunk_seeds, &mut packed);
                            packed
                        })
                    })
                    .collect();
                parts = handles.into_iter().map(|h| h.join().unwrap()).collect();
            });
            let reassembled: Vec<RouteRequest> = parts.into_iter().flatten().collect();
            assert_eq!(reassembled, reference, "threads {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fill_requests_lanes_rejects_too_many_lanes() {
        let seeds = vec![0u64; edn_core::MAX_LANES + 1];
        Permutation::identity(4).fill_requests_lanes::<StdRng>(&seeds, &mut Vec::new());
    }

    #[test]
    fn random_permutations_differ_across_seeds() {
        let a = Permutation::random(64, &mut StdRng::seed_from_u64(1));
        let b = Permutation::random(64, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
        let c = Permutation::random(64, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, c, "same seed must reproduce the permutation");
    }

    #[test]
    fn tiny_domains() {
        assert!(Permutation::identity(0).is_identity());
        assert!(Permutation::bit_reversal(1).unwrap().is_identity());
        assert!(Permutation::bit_reversal(2).unwrap().is_identity());
        assert!(Permutation::perfect_shuffle(2).unwrap().is_identity());
        assert!(Permutation::butterfly(2).unwrap().is_identity());
    }
}
