//! Workload generators for EDN experiments.
//!
//! The paper's analysis (Sections 3–5) uses three traffic families, all
//! provided here as deterministic, seedable generators:
//!
//! * [`uniform`] — Bernoulli-`r` uniform random traffic (the Eq. 4 model):
//!   every input independently requests a uniformly random output.
//! * [`permutations`] — full and partial permutations (the Section 3.2.1
//!   and Section 5 model), including the structured permutations
//!   (identity, bit reversal, perfect shuffle, ...) that make multistage
//!   networks shine or collapse.
//! * [`hotspot`] — non-uniform traffic with a hot output, the classic
//!   source of the "NUTS" (Non-Uniform Traffic Spots) contention the
//!   paper's multipath design targets.
//!
//! All generators produce batches of [`edn_core::RouteRequest`] ready for
//! `edn_core::route_batch` or the `edn-sim` system simulators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hotspot;
pub mod permutations;
pub mod uniform;

pub use hotspot::HotSpotTraffic;
pub use permutations::Permutation;
pub use uniform::UniformTraffic;

use edn_core::RouteRequest;
use rand::rngs::StdRng;

/// A source of per-cycle request batches.
///
/// Implementations are deterministic given the RNG: replaying the same
/// seed replays the same workload.
pub trait Workload {
    /// Produces the next cycle's batch of requests.
    fn next_batch(&mut self, rng: &mut StdRng) -> Vec<RouteRequest>;

    /// Writes the next cycle's batch into `batch` (cleared first), reusing
    /// its capacity.
    ///
    /// This is the hot-path entry: Monte-Carlo drivers call it with one
    /// long-lived buffer so steady-state cycles never allocate. The
    /// default implementation delegates to [`Workload::next_batch`] for
    /// back-compatibility; the generators in this crate override it with
    /// allocation-free fills that draw the identical RNG stream.
    fn fill_batch(&mut self, batch: &mut Vec<RouteRequest>, rng: &mut StdRng) {
        *batch = self.next_batch(rng);
    }

    /// The number of network inputs this workload drives.
    fn inputs(&self) -> u64;

    /// The number of network outputs this workload addresses.
    fn outputs(&self) -> u64;
}
