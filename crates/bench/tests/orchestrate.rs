//! End-to-end contract of the scale-out rung two: `edn_orchestrate`
//! drives N shard processes + the `edn_store` row cache + `edn_merge`
//! into one command whose artifact is **byte-identical** to the
//! unsharded, uncached run — and an unchanged re-run is pure cache
//! replay (100% hits). Also covers the retry path (an injected child
//! failure), exhaustion (a permanently failing child), and `edn_plot`
//! regenerating figures from artifacts without re-simulation.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("edn_orchestrate_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one experiment binary to completion, returning its stdout.
fn run_experiment(exe: &str, extra: &[&str], envs: &[(&str, &str)]) -> String {
    let mut command = Command::new(exe);
    command.args(extra);
    for &(key, value) in envs {
        command.env(key, value);
    }
    let output = command.output().expect("experiment binary spawns");
    assert!(
        output.status.success(),
        "{exe} {extra:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn orchestrate(args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut command = Command::new(env!("CARGO_BIN_EXE_edn_orchestrate"));
    command.args(args);
    for &(key, value) in envs {
        command.env(key, value);
    }
    command.output().expect("edn_orchestrate spawns")
}

#[test]
fn orchestrated_warm_cache_run_is_byte_identical_with_full_hits() {
    let dir = temp_dir("warm");
    let exe = env!("CARGO_BIN_EXE_tab_faults");
    let cache = dir.join("cache");
    // Provenance is env-passed; stamping both runs identically proves it
    // survives orchestration and merging byte-for-byte.
    let envs = [("EDN_GIT_REV", "e2e-rev"), ("EDN_HOST", "e2e-host")];

    // The reference: single process, no cache.
    let full = dir.join("full.jsonl");
    run_experiment(
        exe,
        &[
            "--cycles",
            "2",
            "--threads",
            "2",
            "--no-cache",
            "--out",
            full.to_str().unwrap(),
        ],
        &envs,
    );
    let full_text = std::fs::read_to_string(&full).unwrap();
    assert!(
        full_text.lines().next().unwrap().contains("e2e-rev"),
        "provenance stamped into the header"
    );

    // One command, three shard processes, shared cold cache.
    let merged = dir.join("merged.jsonl");
    let output = orchestrate(
        &[
            "--jobs",
            "3",
            "--cache",
            cache.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
            "--",
            exe,
            "--cycles",
            "2",
            "--threads",
            "2",
        ],
        &envs,
    );
    assert!(
        output.status.success(),
        "orchestrate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&merged).unwrap(),
        full_text,
        "orchestrated artifact differs from the unsharded uncached run"
    );

    // Unchanged re-run on the now-warm cache: everything replays.
    let warm = dir.join("warm.jsonl");
    let stdout = run_experiment(
        exe,
        &[
            "--cycles",
            "2",
            "--threads",
            "2",
            "--cache",
            cache.to_str().unwrap(),
            "--cache-stats",
            "--out",
            warm.to_str().unwrap(),
        ],
        &envs,
    );
    assert_eq!(std::fs::read_to_string(&warm).unwrap(), full_text);
    assert!(
        stdout.contains("(100% hits)"),
        "warm run must be pure replay, stdout was:\n{stdout}"
    );
    assert!(stdout.contains("0 computed"), "{stdout}");

    // And the orchestrator itself re-runs warm, still byte-identical.
    let remerged = dir.join("remerged.jsonl");
    let output = orchestrate(
        &[
            "--jobs",
            "3",
            "--cache",
            cache.to_str().unwrap(),
            "--out",
            remerged.to_str().unwrap(),
            "--",
            exe,
            "--cycles",
            "2",
            "--threads",
            "2",
        ],
        &envs,
    );
    assert!(output.status.success());
    assert_eq!(std::fs::read_to_string(&remerged).unwrap(), full_text);
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a wrapper script that fails the first invocation matching
/// `fail_shard`, then delegates to the real binary — the injected-fault
/// harness for the retry path.
#[cfg(unix)]
fn write_flaky_wrapper(dir: &Path, exe: &str, fail_shard: &str, always_fail: bool) -> PathBuf {
    use std::os::unix::fs::PermissionsExt as _;
    let marker = dir.join("failed_once.marker");
    let script = dir.join("flaky.sh");
    let body = if always_fail {
        "#!/bin/sh\nexit 1\n".to_string()
    } else {
        format!(
            "#!/bin/sh\n\
             hit=\"\"\n\
             for arg in \"$@\"; do [ \"$arg\" = \"{fail_shard}\" ] && hit=1; done\n\
             if [ -n \"$hit\" ] && [ ! -f \"{marker}\" ]; then\n\
               touch \"{marker}\"\n\
               exit 1\n\
             fi\n\
             exec \"{exe}\" \"$@\"\n",
            marker = marker.display(),
        )
    };
    std::fs::write(&script, body).unwrap();
    let mut permissions = std::fs::metadata(&script).unwrap().permissions();
    permissions.set_mode(0o755);
    std::fs::set_permissions(&script, permissions).unwrap();
    script
}

#[cfg(unix)]
#[test]
fn orchestrator_retries_an_injected_child_failure() {
    let dir = temp_dir("retry");
    let exe = env!("CARGO_BIN_EXE_tab_faults");

    let full = dir.join("full.jsonl");
    run_experiment(
        exe,
        &[
            "--cycles",
            "2",
            "--threads",
            "1",
            "--out",
            full.to_str().unwrap(),
        ],
        &[],
    );

    // Shard 2/3 dies once, then recovers: one retry must heal the run.
    let script = write_flaky_wrapper(&dir, exe, "2/3", false);
    let merged = dir.join("merged.jsonl");
    let output = orchestrate(
        &[
            "--jobs",
            "3",
            "--retries",
            "2",
            "--out",
            merged.to_str().unwrap(),
            "--",
            script.to_str().unwrap(),
            "--cycles",
            "2",
            "--threads",
            "1",
        ],
        &[],
    );
    assert!(
        output.status.success(),
        "orchestrate with one flaky shard failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("retrying"), "retry reported: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("1 retry"), "retry counted: {stdout}");
    assert_eq!(
        std::fs::read_to_string(&merged).unwrap(),
        std::fs::read_to_string(&full).unwrap(),
        "retried shard must splice back byte-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn orchestrator_reports_a_shard_that_exhausts_its_retries() {
    let dir = temp_dir("exhaust");
    let script = write_flaky_wrapper(&dir, "unused", "", true);
    let merged = dir.join("merged.jsonl");
    let output = orchestrate(
        &[
            "--jobs",
            "2",
            "--retries",
            "1",
            "--out",
            merged.to_str().unwrap(),
            "--",
            script.to_str().unwrap(),
        ],
        &[],
    );
    assert!(
        !output.status.success(),
        "exhausted shard must fail the run"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("failed all 2 attempts"),
        "exhaustion named: {stderr}"
    );
    assert!(!merged.exists(), "no artifact on failure");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plot_regenerates_figures_from_the_artifact_alone() {
    let dir = temp_dir("plot");
    let exe = env!("CARGO_BIN_EXE_tab_nuts_sweep");
    let artifact = dir.join("nuts.jsonl");
    run_experiment(
        exe,
        &[
            "--seeds",
            "2",
            "--cycles",
            "5",
            "--threads",
            "2",
            "--out",
            artifact.to_str().unwrap(),
        ],
        &[],
    );
    let svg_dir = dir.join("plots");
    let output = Command::new(env!("CARGO_BIN_EXE_edn_plot"))
        .arg(&artifact)
        .args(["--x", "hot fraction", "--y", "acceptance"])
        .arg("--svg")
        .arg(&svg_dir)
        .output()
        .expect("edn_plot spawns");
    assert!(
        output.status.success(),
        "edn_plot failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("TAB-NUTS-SWEEP"),
        "table title rendered: {stdout}"
    );
    assert!(
        stdout.contains("acceptance vs hot fraction"),
        "curve rendered: {stdout}"
    );
    assert!(stdout.contains('*'), "ASCII points plotted");
    let svgs: Vec<PathBuf> = std::fs::read_dir(&svg_dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .collect();
    assert_eq!(svgs.len(), 1, "one SVG per declared table");
    let svg = std::fs::read_to_string(&svgs[0]).unwrap();
    assert!(svg.starts_with("<svg"), "well-formed SVG");
    assert!(svg.contains("polyline"), "curve present");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_check_reports_every_error_before_failing() {
    let dir = temp_dir("check_all");
    let exe = env!("CARGO_BIN_EXE_tab_faults");
    let good = dir.join("good.jsonl");
    run_experiment(
        exe,
        &[
            "--cycles",
            "2",
            "--threads",
            "1",
            "--out",
            good.to_str().unwrap(),
        ],
        &[],
    );
    // Two broken copies, each with two problems.
    let text = std::fs::read_to_string(&good).unwrap();
    let broken_a = dir.join("broken_a.jsonl");
    std::fs::write(
        &broken_a,
        text.clone() + "not json\n{\"table\": \"x\", \"v\": 1}\n",
    )
    .unwrap();
    let broken_b = dir.join("broken_b.jsonl");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.remove(1); // row gap
    std::fs::write(&broken_b, lines.join("\n") + "\nstill not json\n").unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_edn_merge"))
        .arg("--check")
        .arg(&broken_a)
        .arg(&good)
        .arg(&broken_b)
        .output()
        .expect("edn_merge spawns");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    // Every problem in every file is named before the nonzero exit.
    assert!(stderr.contains("broken_a.jsonl"), "{stderr}");
    assert!(stderr.contains("broken_b.jsonl"), "{stderr}");
    assert!(stderr.contains("good.jsonl: ok"), "{stderr}");
    assert!(
        stderr.matches("JSON parse error").count() >= 2,
        "both parse errors reported: {stderr}"
    );
    assert!(stderr.contains("`seq`"), "missing-seq reported: {stderr}");
    assert!(stderr.contains("error(s) found"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
