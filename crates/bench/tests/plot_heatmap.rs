//! Regression contract of `edn_plot --heatmap` on degenerate sidecars:
//! a metrics sidecar with **zero routing records** (an experiment that
//! recorded no probe snapshots, or an empty file) must produce a clear
//! diagnostic and a nonzero exit — never a panic, and never a silent
//! empty heatmap. The happy path (one routing record → one heatmap row)
//! rides along to prove the flag itself works.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("edn_plot_heatmap_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plot_heatmap(sidecar: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_edn_plot"))
        .arg("--heatmap")
        .arg(sidecar)
        .output()
        .expect("edn_plot spawns")
}

#[test]
fn zero_routing_records_is_a_diagnostic_not_a_panic() {
    let dir = temp_dir("zero");
    // A realistic sidecar whose experiment recorded no probe snapshots:
    // run + table records only.
    let sidecar = dir.join("run.metrics.jsonl");
    std::fs::write(
        &sidecar,
        "{\"kind\": \"run\", \"experiment\": \"tab_faults\"}\n\
         {\"kind\": \"table\", \"title\": \"TAB X\", \"rows\": 3}\n",
    )
    .unwrap();
    let output = plot_heatmap(&sidecar);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "zero routing records must exit nonzero (stderr: {stderr})"
    );
    assert!(
        stderr.contains("no routing records"),
        "diagnostic must name the problem, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be a diagnostic, not a panic: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_sidecar_is_a_diagnostic_not_a_panic() {
    let dir = temp_dir("empty");
    let sidecar = dir.join("empty.metrics.jsonl");
    std::fs::write(&sidecar, "").unwrap();
    let output = plot_heatmap(&sidecar);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!output.status.success(), "empty sidecar must exit nonzero");
    assert!(
        stderr.contains("no routing records") && !stderr.contains("panicked"),
        "diagnostic, not panic: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_routing_record_renders_one_heatmap_row() {
    let dir = temp_dir("happy");
    let sidecar = dir.join("probe.metrics.jsonl");
    std::fs::write(
        &sidecar,
        "{\"kind\": \"run\", \"experiment\": \"demo\"}\n\
         {\"kind\": \"routing\", \"label\": \"EDN(16,4,4,2) demo\", \"cycles\": 4, \
          \"stages\": [{\"granted\": 128, \"wires\": 64}, {\"granted\": 64, \"wires\": 64}]}\n",
    )
    .unwrap();
    let output = plot_heatmap(&sidecar);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "heatmap render failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("stage utilization") && stdout.contains("EDN(16,4,4,2) demo"),
        "heatmap output missing expected content: {stdout}"
    );
    // granted/(cycles*wires): 128/(4*64) = 0.50, 64/(4*64) = 0.25.
    assert!(
        stdout.contains("0.50") && stdout.contains("0.25"),
        "per-stage utilization values missing: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
