//! End-to-end sharded-artifact contract, at the process level: for real
//! experiment binaries and shard counts {2, 3, 5}, running every shard
//! as a **separate process** and merging with `edn_merge` produces an
//! artifact **byte-identical** to the single-process run — header
//! included — and every line after the header parses as JSON.
//!
//! This is the acceptance test of the scale-out rung: shards only need
//! the binary name, `--shard I/N`, and a place to put their file; no
//! coordination, no shared state, bit-exact reassembly.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs one experiment binary with the given extra args, returning its
/// artifact text.
fn run_binary(exe: &str, dir: &Path, name: &str, extra: &[&str]) -> String {
    let out = dir.join(name);
    let status = Command::new(exe)
        .args(extra)
        .arg("--out")
        .arg(&out)
        .arg("--threads")
        .arg("2")
        .stdout(std::process::Stdio::null())
        .status()
        .expect("experiment binary spawns");
    assert!(status.success(), "{exe} {extra:?} failed");
    std::fs::read_to_string(&out).expect("artifact written")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("edn_shard_merge_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The full contract for one binary: unsharded vs {2, 3, 5}-way sharded
/// runs, merged with the real `edn_merge` binary, compared byte-for-byte.
fn assert_shard_merge_identical(exe: &str, tag: &str, extra: &[&str]) {
    let dir = temp_dir(tag);
    let merge_exe = env!("CARGO_BIN_EXE_edn_merge");

    let full = run_binary(exe, &dir, "full.jsonl", extra);
    let full_lines: Vec<&str> = full.lines().collect();
    assert!(full_lines.len() > 1, "{tag}: artifact has rows");
    // Every line after the header parses as JSON with the seq envelope.
    for (index, line) in full_lines[1..].iter().enumerate() {
        let value = edn_sweep::json::parse(line)
            .unwrap_or_else(|error| panic!("{tag}: row {index} is not JSON: {error}"));
        assert_eq!(
            value.get("seq").and_then(|v| v.as_usize()),
            Some(index),
            "{tag}: row {index} seq"
        );
    }
    edn_sweep::stream::SchemaHeader::parse(full_lines[0])
        .unwrap_or_else(|error| panic!("{tag}: header: {error}"));

    for count in [2usize, 3, 5] {
        let mut parts = Vec::new();
        for index in 1..=count {
            let name = format!("part{index}of{count}.jsonl");
            let mut shard_args = extra.to_vec();
            let shard = format!("{index}/{count}");
            shard_args.extend(["--shard", &shard]);
            run_binary(exe, &dir, &name, &shard_args);
            parts.push(dir.join(name));
        }
        let merged_path = dir.join(format!("merged{count}.jsonl"));
        let status = Command::new(merge_exe)
            .args(&parts)
            .arg("--out")
            .arg(&merged_path)
            .stderr(std::process::Stdio::null())
            .status()
            .expect("edn_merge spawns");
        assert!(status.success(), "{tag}: {count}-way merge failed");
        let merged = std::fs::read_to_string(&merged_path).unwrap();
        assert_eq!(
            merged, full,
            "{tag}: {count}-way merged artifact differs from the unsharded run"
        );
    }

    // And edn_merge --check accepts every file it just validated.
    let status = Command::new(merge_exe)
        .arg("--check")
        .arg(dir.join("full.jsonl"))
        .stderr(std::process::Stdio::null())
        .status()
        .expect("edn_merge --check spawns");
    assert!(
        status.success(),
        "{tag}: --check rejected the full artifact"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig07_shards_merge_byte_identical() {
    // Analytic Eq. 4 sweep: pure per-row computation.
    assert_shard_merge_identical(env!("CARGO_BIN_EXE_fig07_pa_families8"), "fig07", &[]);
}

#[test]
fn tab_faults_shards_merge_byte_identical() {
    // Monte-Carlo on the engine hot path with per-worker fault caches:
    // the rng_seed-per-coordinate contract under sharding.
    assert_shard_merge_identical(
        env!("CARGO_BIN_EXE_tab_faults"),
        "tab_faults",
        &["--cycles", "2"],
    );
}

#[test]
fn tab_structured_shards_merge_byte_identical() {
    // Multi-table-free but seed-averaged rows on cached engines.
    assert_shard_merge_identical(
        env!("CARGO_BIN_EXE_tab_structured"),
        "tab_structured",
        &["--seeds", "2"],
    );
}

#[test]
fn tab_ra_edn_multi_table_shards_merge_byte_identical() {
    // Three tables in one artifact (anchor, tail, sweep): the global
    // seq numbering and per-table shard slices compose.
    assert_shard_merge_identical(
        env!("CARGO_BIN_EXE_tab_ra_edn"),
        "tab_ra_edn",
        &["--seeds", "2", "--cycles", "1"],
    );
}

#[test]
fn merge_rejects_mixed_runs() {
    // Shards of *different* runs (different --cycles) must not merge.
    let dir = temp_dir("mixed");
    let exe = env!("CARGO_BIN_EXE_tab_faults");
    run_binary(exe, &dir, "a.jsonl", &["--cycles", "2", "--shard", "1/2"]);
    run_binary(exe, &dir, "b.jsonl", &["--cycles", "3", "--shard", "2/2"]);
    let status = Command::new(env!("CARGO_BIN_EXE_edn_merge"))
        .arg(dir.join("a.jsonl"))
        .arg(dir.join("b.jsonl"))
        .arg("--out")
        .arg(dir.join("merged.jsonl"))
        .stderr(std::process::Stdio::null())
        .status()
        .expect("edn_merge spawns");
    assert!(!status.success(), "mixed-spec merge must fail");

    // An incomplete shard set must not merge either.
    let status = Command::new(env!("CARGO_BIN_EXE_edn_merge"))
        .arg(dir.join("a.jsonl"))
        .arg("--out")
        .arg(dir.join("merged.jsonl"))
        .stderr(std::process::Stdio::null())
        .status()
        .expect("edn_merge spawns");
    assert!(!status.success(), "gapped shard set must fail");
    std::fs::remove_dir_all(&dir).ok();
}
