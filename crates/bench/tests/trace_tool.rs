//! End-to-end contract of the flight recorder pipeline: a `--trace` run
//! writes a validating `*.trace.jsonl` sidecar **without changing the
//! primary artifact by a byte**, `edn_merge --check-metrics` accepts the
//! sidecar, and `edn_trace` analyzes it — summary, reconciliation
//! against the same run's StageProbe aggregates, and a Chrome
//! trace-event export that parses under the strict JSON parser.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("edn_trace_tool_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_tab_nuts(out: &Path, trace: Option<&str>) -> std::process::Output {
    let mut command = Command::new(env!("CARGO_BIN_EXE_tab_nuts"));
    command
        .arg("--seeds")
        .arg("1")
        .arg("--cycles")
        .arg("2")
        .arg("--out")
        .arg(out);
    if let Some(filter) = trace {
        command.arg("--trace");
        if !filter.is_empty() {
            command.arg(filter);
        }
    }
    command.output().expect("tab_nuts spawns")
}

fn sidecar(out: &Path, extension: &str) -> PathBuf {
    out.with_extension(extension)
}

#[test]
fn traced_run_is_byte_identical_and_fully_analyzable() {
    let dir = temp_dir("pipeline");
    let traced_out = dir.join("traced.jsonl");
    let plain_out = dir.join("plain.jsonl");

    let traced = run_tab_nuts(&traced_out, Some(""));
    assert!(
        traced.status.success(),
        "traced run failed: {}",
        String::from_utf8_lossy(&traced.stderr)
    );
    let plain = run_tab_nuts(&plain_out, None);
    assert!(plain.status.success());

    // The headline invariant: tracing never changes the artifact.
    let traced_bytes = std::fs::read(&traced_out).unwrap();
    let plain_bytes = std::fs::read(&plain_out).unwrap();
    assert_eq!(
        traced_bytes, plain_bytes,
        "a traced run's primary artifact must be byte-identical to the untraced run's"
    );

    // The trace sidecar exists and passes the strict validator.
    let trace_path = sidecar(&traced_out, "trace.jsonl");
    let metrics_path = sidecar(&traced_out, "metrics.jsonl");
    assert!(trace_path.exists(), "no trace sidecar written");
    let check = Command::new(env!("CARGO_BIN_EXE_edn_merge"))
        .arg("--check-metrics")
        .arg(&trace_path)
        .arg(&metrics_path)
        .output()
        .expect("edn_merge spawns");
    let check_stderr = String::from_utf8_lossy(&check.stderr);
    assert!(
        check.status.success(),
        "--check-metrics rejected the sidecars: {check_stderr}"
    );
    assert!(
        check_stderr.contains("trace records"),
        "validator should report trace records: {check_stderr}"
    );

    // Summary names every traced label.
    let summary = Command::new(env!("CARGO_BIN_EXE_edn_trace"))
        .arg(&trace_path)
        .output()
        .expect("edn_trace spawns");
    let summary_stdout = String::from_utf8_lossy(&summary.stdout);
    assert!(summary.status.success());
    assert!(
        summary_stdout.contains("TAB-NUTS") && summary_stdout.contains("hot overlay"),
        "summary missing labels: {summary_stdout}"
    );

    // Latency percentiles and block ranking render without error.
    let analyses = Command::new(env!("CARGO_BIN_EXE_edn_trace"))
        .arg(&trace_path)
        .arg("--latency")
        .arg("--blocks")
        .arg("--utilization")
        .output()
        .expect("edn_trace spawns");
    assert!(
        analyses.status.success(),
        "{}",
        String::from_utf8_lossy(&analyses.stderr)
    );
    let analyses_stdout = String::from_utf8_lossy(&analyses.stdout);
    assert!(
        analyses_stdout.contains("p50") && analyses_stdout.contains("block sites"),
        "analyses missing expected sections: {analyses_stdout}"
    );

    // Per-stage event counts reconcile exactly against the StageProbe
    // aggregates the same run recorded.
    let reconcile = Command::new(env!("CARGO_BIN_EXE_edn_trace"))
        .arg(&trace_path)
        .arg("--reconcile")
        .arg(&metrics_path)
        .output()
        .expect("edn_trace spawns");
    assert!(
        reconcile.status.success(),
        "reconcile failed: {}",
        String::from_utf8_lossy(&reconcile.stderr)
    );
    assert!(
        String::from_utf8_lossy(&reconcile.stdout).contains("match the StageProbe aggregates"),
        "reconcile should confirm the match"
    );

    // The Chrome export is strictly valid JSON with a traceEvents array.
    let chrome_path = dir.join("chrome.json");
    let chrome = Command::new(env!("CARGO_BIN_EXE_edn_trace"))
        .arg(&trace_path)
        .arg("--chrome")
        .arg(&chrome_path)
        .output()
        .expect("edn_trace spawns");
    assert!(
        chrome.status.success(),
        "{}",
        String::from_utf8_lossy(&chrome.stderr)
    );
    let exported = std::fs::read_to_string(&chrome_path).unwrap();
    let parsed = edn_sweep::json::parse(exported.trim_end()).expect("chrome export parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "chrome export has no events");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_filter_restricts_the_sidecar() {
    let dir = temp_dir("filter");
    let out = dir.join("run.jsonl");
    let output = run_tab_nuts(&out, Some("source=3"));
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(sidecar(&out, "trace.jsonl")).unwrap();
    let mut events = 0usize;
    for line in text.lines() {
        let record = edn_sweep::json::parse(line).expect("sidecar line parses");
        match record.get("kind").and_then(|v| v.as_str()) {
            Some("header") => {
                assert_eq!(
                    record.get("filter").and_then(|v| v.as_str()),
                    Some("source=3"),
                    "header must carry the filter"
                );
            }
            Some("event") => {
                events += 1;
                assert_eq!(
                    record.get("source").and_then(|v| v.as_usize()),
                    Some(3),
                    "filtered sidecar leaked a foreign source: {line}"
                );
            }
            _ => {}
        }
    }
    assert!(events > 0, "source filter should still record source 3");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_sidecars_are_diagnostics_not_panics() {
    let dir = temp_dir("malformed");
    // Missing header.
    let headerless = dir.join("headerless.trace.jsonl");
    std::fs::write(
        &headerless,
        "{\"kind\": \"event\", \"label\": \"x\", \"cycle\": 0, \"event\": \"inject\", \
         \"source\": 0, \"tag\": 0, \"stage\": 0, \"value\": 0}\n",
    )
    .unwrap();
    // Wrong schema version.
    let wrong_schema = dir.join("schema.trace.jsonl");
    std::fs::write(
        &wrong_schema,
        "{\"kind\": \"header\", \"edn_trace_schema\": 999, \"binary\": \"x\", \
         \"shard\": \"1/1\", \"filter\": \"\"}\n",
    )
    .unwrap();
    for (path, expect) in [
        (&headerless, "not the trace header"),
        (&wrong_schema, "schema"),
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_edn_trace"))
            .arg(path)
            .output()
            .expect("edn_trace spawns");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(!output.status.success(), "{} must fail", path.display());
        assert!(
            stderr.contains(expect) && !stderr.contains("panicked"),
            "diagnostic for {} should mention `{expect}`: {stderr}",
            path.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
