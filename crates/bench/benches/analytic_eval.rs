//! Criterion bench: cost of evaluating the analytic models.
//!
//! The figure sweeps evaluate `PA(r)` thousands of times (once per size
//! per family per rate); the MIMD fixed point iterates it further. This
//! bench pins their cost so sweep regressions are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edn_analytic::mimd::resubmission_fixed_point;
use edn_analytic::pa::probability_of_acceptance;
use edn_analytic::simd::RaEdnModel;
use edn_analytic::DilatedDeltaModel;
use edn_core::EdnParams;
use std::hint::black_box;

fn bench_pa(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("analytic_pa");
    for l in [2u32, 6, 10] {
        let params = EdnParams::new(16, 4, 4, l).expect("valid parameters");
        group.bench_with_input(BenchmarkId::new("PA", l), &params, |bencher, params| {
            bencher.iter(|| black_box(probability_of_acceptance(params, black_box(1.0))));
        });
    }
    group.finish();
}

fn bench_mimd_fixed_point(criterion: &mut Criterion) {
    let params = EdnParams::new(16, 4, 4, 4).expect("valid parameters");
    criterion.bench_function("mimd_fixed_point", |bencher| {
        bencher.iter(|| {
            black_box(resubmission_fixed_point(
                &params,
                black_box(0.5),
                1e-12,
                100_000,
            ))
        });
    });
}

fn bench_ra_edn_timing(criterion: &mut Criterion) {
    let model = RaEdnModel::new(16, 4, 2, 16).expect("valid parameters");
    criterion.bench_function("ra_edn_timing", |bencher| {
        bencher.iter(|| black_box(model.expected_permutation_cycles()));
    });
}

fn bench_dilated(criterion: &mut Criterion) {
    let model = DilatedDeltaModel::new(4, 4, 5).expect("valid parameters");
    criterion.bench_function("dilated_pa", |bencher| {
        bencher.iter(|| black_box(model.probability_of_acceptance(black_box(1.0))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_pa, bench_mimd_fixed_point, bench_ra_edn_timing, bench_dilated
}
criterion_main!(benches);
