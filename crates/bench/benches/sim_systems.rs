//! Criterion bench: system-simulator cycle rates.
//!
//! Measures one MIMD resubmission step on a 256-processor system and one
//! full RA-EDN permutation on a small clustered system — the units of
//! work behind TAB-SIMVAL and TAB-RAEDN.

use criterion::{criterion_group, criterion_main, Criterion};
use edn_core::EdnParams;
use edn_sim::{ArbiterKind, MimdSystem, RaEdnSystem, ResubmitPolicy};
use std::hint::black_box;

fn bench_mimd_step(criterion: &mut Criterion) {
    let params = EdnParams::new(16, 4, 4, 3).expect("valid parameters"); // 256 procs
    criterion.bench_function("mimd_step_256", |bencher| {
        let mut system =
            MimdSystem::new(params, 0.5, ArbiterKind::Random, ResubmitPolicy::Redraw, 1)
                .expect("valid rate");
        bencher.iter(|| black_box(system.step()));
    });
}

fn bench_ra_edn_permutation(criterion: &mut Criterion) {
    criterion.bench_function("ra_edn_permutation_32x4", |bencher| {
        let mut system =
            RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 2).expect("valid parameters");
        bencher.iter(|| black_box(system.route_random_permutation()));
    });
}

fn bench_maspar_cycle_scale(criterion: &mut Criterion) {
    // One full 16K-PE MasPar permutation is ~35 cycles of 1024-wide routing;
    // keep sample count low.
    let mut group = criterion.benchmark_group("maspar");
    group.sample_size(10);
    group.bench_function("ra_edn_permutation_1024x16", |bencher| {
        let mut system =
            RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, 3).expect("valid parameters");
        bencher.iter(|| black_box(system.route_random_permutation()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mimd_step, bench_ra_edn_permutation, bench_maspar_cycle_scale
}
criterion_main!(benches);
