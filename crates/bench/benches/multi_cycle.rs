//! Criterion bench: resident session stepping vs the caller-driven
//! per-cycle loop — the perf claim behind the `RouteSession` layer.
//!
//! The workload is the repository's canonical multi-cycle scenario: a
//! full-load random batch routed **to completion** with persistent
//! (same-tag) resubmission under deterministic priority arbitration, on
//! the MasPar-shaped `EDN(64,16,4,2)` (1024 ports) and the 4096-port
//! `EDN(16,4,4,5)`. Two variants complete the identical run:
//!
//! * `caller` — the pre-session arrangement: the caller owns the waiting
//!   set and the delivered-mask, rebuilds the submission each cycle, and
//!   round-trips through [`RoutingEngine::route`] once per cycle (with
//!   reused buffers — this is the *optimized* legacy loop, not a straw
//!   man);
//! * `session` — one [`RoutingEngine::begin_session`] +
//!   [`edn_core::RouteSession::run_to_completion`] call over a cached
//!   [`SessionState`], the path `MimdSystem`, `RaEdnSystem`, and the
//!   Monte-Carlo estimators now ride.
//!
//! Besides the Criterion report, the bench self-times both variants and
//! writes `BENCH_multi_cycle.json` at the repository root so the perf
//! trajectory is tracked in-tree. A bit-identical-output assertion guards
//! the comparison: both variants must produce the same cycle count and
//! per-cycle delivery profile before timing means anything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edn_core::{EdnParams, PriorityArbiter, Resubmit, RouteRequest, RoutingEngine, SessionState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const COMPLETION_LIMIT: u64 = 1 << 24;

fn shapes() -> Vec<(&'static str, EdnParams)> {
    vec![
        (
            "EDN(64,16,4,2)",
            EdnParams::new(64, 16, 4, 2).expect("the MasPar shape is valid"),
        ),
        (
            "EDN(16,4,4,5)",
            EdnParams::new(16, 4, 4, 5).expect("the 4096-port shape is valid"),
        ),
    ]
}

fn full_load_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

/// Reused caller-side buffers for the legacy loop, so the comparison is
/// against the best caller-driven arrangement, not a per-run allocator.
#[derive(Default)]
struct CallerBuffers {
    waiting: Vec<RouteRequest>,
    delivered: Vec<bool>,
    per_cycle: Vec<u64>,
}

/// The pre-session loop: one engine round-trip per cycle, waiting set and
/// delivered-mask owned by the caller.
fn caller_driven(
    engine: &mut RoutingEngine,
    buffers: &mut CallerBuffers,
    batch: &[RouteRequest],
) -> u64 {
    let inputs = engine.params().inputs() as usize;
    let mut arbiter = PriorityArbiter::new();
    buffers.waiting.clear();
    buffers.waiting.extend_from_slice(batch);
    buffers.delivered.clear();
    buffers.delivered.resize(inputs, false);
    buffers.per_cycle.clear();
    let mut cycles = 0u64;
    while !buffers.waiting.is_empty() {
        assert!(cycles < COMPLETION_LIMIT, "caller loop livelocked");
        let outcome = engine.route(&buffers.waiting, &mut arbiter);
        for &(source, _) in outcome.delivered() {
            buffers.delivered[source as usize] = true;
        }
        buffers.per_cycle.push(outcome.delivered_count() as u64);
        let delivered = &buffers.delivered;
        buffers.waiting.retain(|r| !delivered[r.source as usize]);
        cycles += 1;
    }
    cycles
}

/// The session path: the whole completion is one engine call.
fn session_driven(
    engine: &mut RoutingEngine,
    state: &mut SessionState,
    batch: &[RouteRequest],
) -> u64 {
    engine
        .begin_session(state, batch, Resubmit::SameTag, &mut PriorityArbiter::new())
        .run_to_completion(COMPLETION_LIMIT)
}

fn bench_session_vs_caller(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("multi_cycle");
    for (name, params) in shapes() {
        let batch = full_load_batch(&params, 0xED17);
        let mut engine = RoutingEngine::from_params(params);
        let mut buffers = CallerBuffers::default();
        let mut state = SessionState::new();
        // Guard: identical completion profiles before speed matters.
        let caller_cycles = caller_driven(&mut engine, &mut buffers, &batch);
        let session_cycles = session_driven(&mut engine, &mut state, &batch);
        assert_eq!(caller_cycles, session_cycles, "{name}: cycle counts differ");
        assert_eq!(
            buffers.per_cycle,
            state.delivered_per_cycle(),
            "{name}: per-cycle delivery profiles differ"
        );

        group.bench_with_input(
            BenchmarkId::new("caller", name),
            &batch,
            |bencher, batch| {
                bencher.iter(|| black_box(caller_driven(&mut engine, &mut buffers, batch)))
            },
        );
        let mut engine = RoutingEngine::from_params(params);
        group.bench_with_input(
            BenchmarkId::new("session", name),
            &batch,
            |bencher, batch| {
                bencher.iter(|| black_box(session_driven(&mut engine, &mut state, batch)))
            },
        );
    }
    group.finish();
}

/// Median ns per run over `samples` batches of `iters` runs.
fn median_ns(mut f: impl FnMut(), samples: usize, iters: u32) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    timings[timings.len() / 2]
}

/// Self-timed comparison written to `BENCH_multi_cycle.json` so the perf
/// trajectory lives in-tree (independent of the Criterion harness in
/// use).
fn write_json_trajectory(_criterion: &mut Criterion) {
    let mut entries = Vec::new();
    let mut headline = None;
    for (name, params) in shapes() {
        let batch = full_load_batch(&params, 0xED17);
        let mut engine = RoutingEngine::from_params(params);
        let mut buffers = CallerBuffers::default();
        let mut state = SessionState::new();
        let caller = median_ns(
            || {
                black_box(caller_driven(&mut engine, &mut buffers, &batch));
            },
            9,
            12,
        );
        let session = median_ns(
            || {
                black_box(session_driven(&mut engine, &mut state, &batch));
            },
            9,
            12,
        );
        let speedup = caller / session;
        if headline.is_none() {
            headline = Some(speedup);
        }
        println!(
            "{name}: caller {caller:.0} ns, session {session:.0} ns per completed run \
             -> session speedup {speedup:.2}x"
        );
        entries.push(format!(
            "    {{\"shape\": \"{name}\", \"ports\": {}, \
             \"caller_ns_per_run\": {caller:.1}, \"session_ns_per_run\": {session:.1}, \
             \"session_speedup\": {speedup:.3}}}",
            params.inputs()
        ));
    }
    let provenance = edn_bench::bench_provenance_json();
    let json = format!(
        "{{\n  \"bench\": \"multi_cycle\",\n  \
         {provenance},\n  \
         \"workload\": \"full-load resident run to completion, same-tag resubmission, \
         priority arbitration\",\n  \
         \"unit\": \"ns per completed multi-cycle run (median)\",\n  \
         \"headline_session_speedup_maspar\": {:.3},\n  \
         \"note\": \"caller = the pre-session per-cycle loop with reused caller-side \
         buffers (the optimized legacy arrangement, not a straw man); session = one \
         begin_session + run_to_completion call over a cached SessionState. Both \
         complete identical runs (asserted bit-for-bit before timing). Routing \
         dominates both variants, so expect parity-level numbers (~1x, occasionally \
         above): the session's win is architectural — the waiting set, \
         delivered-mask, and per-cycle accounting move inside the engine layer, so \
         every simulator's inner loop collapses to one engine call per run.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        headline.expect("at least one shape is benchmarked"),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multi_cycle.json");
    std::fs::write(path, json).expect("write BENCH_multi_cycle.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_session_vs_caller, write_json_trajectory
}
criterion_main!(benches);
