//! Self-timed bench: fabric database build / load / route at scale —
//! the perf claim behind `edn_fabric`.
//!
//! The square family `EDN(16,4,4,l)` for `l = 4..=9` spans 2^10 to 2^20
//! ports (the paper's "very large parallel computers" regime). For each
//! shape the bench times the three phases of the database lifecycle:
//!
//! * `build` — compile the interstage wiring from the topology with the
//!   full deep validation (`CompiledWiring::compile`), i.e. what
//!   `edn_fabric build` pays once per shape;
//! * `load` — open, header-check, hash-verify, and map the saved
//!   database back into routable form (`Fabric::load` — zero-copy
//!   memory mapping on little-endian Unix), i.e. what every shard
//!   process pays at startup under `--fabric`;
//! * `route` — one full-load priority cycle on the loaded wiring, to
//!   anchor the load cost against real routing work at the same scale.
//!
//! `load_speedup` is build-time over load-time per shape: how many times
//! cheaper process startup gets when wiring comes from the database
//! instead of being re-wired in-process. A bit-identical assertion
//! (loaded wiring == freshly compiled wiring, loaded route == wired
//! route) guards every shape before timing means anything.
//!
//! Results go to `BENCH_fabric_scale.json` at the repository root.
//! `EDN_FABRIC_SCALE_MAX_PORTS` caps the largest shape (CI smoke runs
//! set it low; the committed artifact is a full run to 2^20).

use edn_core::{
    CompiledWiring, EdnParams, EdnTopology, PriorityArbiter, RouteRequest, RoutingEngine,
};
use edn_fabric::Fabric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Fastest ns per run over `samples` short batches of `iters` runs
/// (after one warm-up batch) — same estimator as the other self-timed
/// benches, so ratios across files stay comparable.
fn min_ns(mut f: impl FnMut(), samples: usize, iters: u32) -> f64 {
    for _ in 0..iters {
        f();
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn full_load_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

fn main() {
    let max_ports: u64 = std::env::var("EDN_FABRIC_SCALE_MAX_PORTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);
    let dir = std::env::temp_dir().join(format!("edn_fabric_scale_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch directory");

    let mut entries = Vec::new();
    let mut largest_speedup = 0.0f64;
    let mut largest_ports = 0u64;
    for l in 4..=9u32 {
        let params = EdnParams::new(16, 4, 4, l).expect("the square family is valid");
        let ports = params.inputs();
        if ports > max_ports {
            println!("skipping EDN(16,4,4,{l}) ({ports} ports > EDN_FABRIC_SCALE_MAX_PORTS)");
            continue;
        }
        // Fewer samples at the big shapes: each build is already long,
        // and the minimum estimator needs windows, not repetition.
        let (samples, route_samples) = if ports >= 1 << 18 { (3, 3) } else { (7, 10) };

        let path = Fabric::path_in(&dir, &params);
        Fabric::build(params)
            .expect("the shape compiles")
            .save(&path)
            .expect("save fabric");
        let table_bytes = std::fs::metadata(&path).expect("stat fabric").len();

        // Correctness gate: the loaded database must be bit-identical
        // to an in-process compile, and route identically, before any
        // of its timings mean anything.
        let loaded = Fabric::load(&path).expect("load fabric");
        let compiled = CompiledWiring::compile_params(params).expect("compile wiring");
        assert_eq!(
            loaded.wiring().as_ref(),
            &compiled,
            "EDN(16,4,4,{l}): loaded wiring diverged from in-process compilation"
        );
        let batch = full_load_batch(&params, 0xFAB + l as u64);
        let mut wired_engine = RoutingEngine::from_params(params);
        let mut loaded_engine = RoutingEngine::with_wiring(Arc::clone(loaded.wiring()));
        assert_eq!(
            loaded_engine
                .route(&batch, &mut PriorityArbiter::new())
                .to_outcome(),
            wired_engine
                .route(&batch, &mut PriorityArbiter::new())
                .to_outcome(),
            "EDN(16,4,4,{l}): loaded fabric routed differently"
        );

        let build_ns = min_ns(
            || {
                black_box(Fabric::build(params).expect("the shape compiles"));
            },
            samples,
            1,
        );
        let load_ns = min_ns(
            || {
                black_box(Fabric::load(&path).expect("load fabric"));
            },
            samples,
            1,
        );
        // Re-wiring baseline: what a process pays without the database —
        // topology construction plus compile-and-validate.
        let rewire_ns = min_ns(
            || {
                let topology = EdnTopology::new(params);
                black_box(CompiledWiring::compile(&topology).expect("compile wiring"));
            },
            samples,
            1,
        );
        let route_ns = min_ns(
            || {
                black_box(
                    loaded_engine
                        .route(&batch, &mut PriorityArbiter::new())
                        .delivered_count(),
                );
            },
            route_samples,
            1,
        );
        let speedup = rewire_ns / load_ns;
        if ports > largest_ports {
            largest_ports = ports;
            largest_speedup = speedup;
        }
        println!(
            "EDN(16,4,4,{l}) ({ports} ports, {table_bytes} bytes): build {:.2} ms, \
             rewire {:.2} ms, load {:.2} ms ({speedup:.1}x), route {:.2} ms",
            build_ns / 1e6,
            rewire_ns / 1e6,
            load_ns / 1e6,
            route_ns / 1e6
        );
        entries.push(format!(
            "    {{\"shape\": \"EDN(16,4,4,{l})\", \"ports\": {ports}, \
             \"file_bytes\": {table_bytes}, \"build_ms\": {:.4}, \"rewire_ms\": {:.4}, \
             \"load_ms\": {:.4}, \"route_ms\": {:.4}, \"load_speedup\": {speedup:.2}}}",
            build_ns / 1e6,
            rewire_ns / 1e6,
            load_ns / 1e6,
            route_ns / 1e6
        ));
    }
    std::fs::remove_dir_all(&dir).ok();

    let provenance = edn_bench::bench_provenance_json();
    let json = format!(
        "{{\n  \"bench\": \"fabric_scale\",\n  \
         {provenance},\n  \
         \"workload\": \"edn_fabric database lifecycle on the square EDN(16,4,4,l) family: \
         build = compile + deep-validate wiring, load = open + hash-verify + zero-copy map \
         the saved database, rewire = the no-database startup baseline, route = one full-load \
         priority cycle on the loaded wiring\",\n  \
         \"unit\": \"ms (min over short windows)\",\n  \
         \"load_speedup_at_largest_shape\": {largest_speedup:.2},\n  \
         \"note\": \"Loaded wiring is asserted bit-identical to in-process compilation (table \
         and routed outcome) at every shape before timing. load_speedup = rewire_ms / load_ms: \
         what each shard process saves at startup under --fabric.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric_scale.json");
    std::fs::write(path, json).expect("write BENCH_fabric_scale.json");
    println!("wrote {path}");
}
