//! Criterion bench: fixed-chunk seed sweeps vs. the work-stealing pool —
//! the perf claim behind the `edn_sweep` executor.
//!
//! The workload is the paper's most uneven sweep: one RA-EDN permutation
//! routing per seed, with the cluster size `q` (hence the number of
//! messages, hence the run cost) growing with the seed index. Fixed
//! contiguous chunking hands the heavy tail of the seed list to the last
//! chunk's thread and serializes the sweep on it; the work-stealing pool
//! drains the same task set cooperatively, and a single-worker run
//! executes inline with no thread spawn at all.
//!
//! Two variants execute the identical sweep function:
//!
//! * `chunked` — `edn_sim::map_seeds_chunked_with`, the pre-pool
//!   implementation retained as the differential baseline;
//! * `pool`    — `edn_sweep::run_indexed`, the work-stealing executor
//!   behind `map_seeds_with` and every experiment binary.
//!
//! Besides the Criterion report, the bench self-times both variants at
//! several worker counts and writes `BENCH_seed_sweep.json` at the
//! repository root so the perf trajectory is tracked in-tree. A
//! bit-identical-output assertion guards the comparison: both executors
//! must produce the same rows before timing means anything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edn_sim::{map_seeds_chunked_with, ArbiterKind, RaEdnSystem};
use edn_sweep::{default_threads, run_indexed};
use std::hint::black_box;
use std::time::Instant;

/// The uneven sweep: seed `i` routes one random permutation on
/// `RA-EDN(4,2,2)` with cluster size `q = 1 << (i / 3)` — the last third
/// of the seed list carries most of the total work.
fn seeds() -> Vec<u64> {
    (0..12).collect()
}

fn cluster_size(seed: u64) -> u64 {
    1 << (seed / 3)
}

/// One sweep task: route a `32 * q(seed)`-message permutation to
/// completion and return the cycle count. Pure in the seed, so both
/// executors must emit identical rows.
fn route_one(seed: u64) -> u32 {
    let mut system = RaEdnSystem::new(4, 2, 2, cluster_size(seed), ArbiterKind::Random, seed)
        .expect("valid RA-EDN parameters");
    system.route_random_permutation().cycles
}

fn sweep_chunked(seeds: &[u64], threads: usize) -> Vec<u32> {
    map_seeds_chunked_with(seeds, threads, || (), |(), seed| route_one(seed))
}

fn sweep_pool(seeds: &[u64], threads: usize) -> Vec<u32> {
    run_indexed(threads, seeds.len(), || (), |(), i| route_one(seeds[i]))
}

fn bench_pool_vs_chunked(criterion: &mut Criterion) {
    let seeds = seeds();
    // Guard: the executors must agree bit-for-bit before speed matters.
    assert_eq!(sweep_chunked(&seeds, 3), sweep_pool(&seeds, 5));

    let mut group = criterion.benchmark_group("seed_sweep");
    for threads in [default_threads(), 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("chunked", format!("threads={threads}")),
            &threads,
            |bencher, &threads| bencher.iter(|| black_box(sweep_chunked(&seeds, threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("pool", format!("threads={threads}")),
            &threads,
            |bencher, &threads| bencher.iter(|| black_box(sweep_pool(&seeds, threads))),
        );
    }
    group.finish();
}

/// Median ns per sweep over `samples` batches of `iters` sweeps.
fn median_ns(mut f: impl FnMut(), samples: usize, iters: u32) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    timings[timings.len() / 2]
}

/// Self-timed comparison written to `BENCH_seed_sweep.json` so the perf
/// trajectory lives in-tree (independent of the Criterion harness in
/// use).
fn write_json_trajectory(_criterion: &mut Criterion) {
    let seeds = seeds();
    let auto = default_threads();
    let mut thread_counts = vec![auto];
    for extra in [2, 4] {
        if !thread_counts.contains(&extra) {
            thread_counts.push(extra);
        }
    }
    let mut entries = Vec::new();
    let mut headline = None;
    for threads in thread_counts {
        let chunked = median_ns(
            || {
                black_box(sweep_chunked(&seeds, threads));
            },
            9,
            20,
        );
        let pool = median_ns(
            || {
                black_box(sweep_pool(&seeds, threads));
            },
            9,
            20,
        );
        let speedup = chunked / pool;
        if threads == auto {
            headline = Some(speedup);
        }
        println!(
            "threads={threads}: chunked {chunked:.0} ns, pool {pool:.0} ns per sweep \
             -> pool speedup {speedup:.2}x"
        );
        entries.push(format!(
            "    {{\"threads\": {threads}, \"auto\": {}, \
             \"chunked_ns_per_sweep\": {chunked:.1}, \"pool_ns_per_sweep\": {pool:.1}, \
             \"pool_speedup\": {speedup:.3}}}",
            threads == auto
        ));
    }
    let provenance = edn_bench::bench_provenance_json();
    let json = format!(
        "{{\n  \"bench\": \"seed_sweep\",\n  \
         {provenance},\n  \
         \"workload\": \"12-seed RA-EDN(4,2,2) permutation sweep, q = 1 << (seed / 3)\",\n  \
         \"host_threads\": {auto},\n  \
         \"unit\": \"ns per sweep (median)\",\n  \
         \"headline_pool_speedup_at_auto_threads\": {:.3},\n  \
         \"note\": \"auto = available_parallelism, the configuration map_seeds_with runs. \
         On a single-core host the auto win is the pool's inline fast path (no thread \
         spawn); rows with threads > cores time-slice, which hides chunk imbalance, so \
         the stealing gain on the uneven tail only materializes with real cores.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        headline.expect("auto thread count is always measured"),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_seed_sweep.json");
    std::fs::write(path, json).expect("write BENCH_seed_sweep.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pool_vs_chunked, write_json_trajectory
}
criterion_main!(benches);
