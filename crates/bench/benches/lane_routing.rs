//! Criterion bench: bit-parallel lane routing vs 64 scalar passes — the
//! perf claim behind the `LaneEngine`.
//!
//! The workload is the Monte-Carlo estimators' inner loop: 64 full-load
//! random replicas (one per lane) of a single network cycle, on the
//! MasPar-shaped `EDN(64,16,4,2)` (1024 ports), the 4096-port
//! `EDN(16,4,4,5)`, and the 16384-port `EDN(16,4,4,6)` (the deepest
//! supported square member, where the stage traversal — the most
//! lane-parallel part — dominates). Two variants route the identical
//! 64 batches:
//!
//! * `scalar` — 64 sequential [`RoutingEngine::route`] passes, one fresh
//!   per-replica arbiter each (the pre-lane seed-axis arrangement, with
//!   the engine and its buffers reused across replicas — the optimized
//!   legacy path, not a straw man);
//! * `lanes` — one [`LaneEngine::route_lanes`] call advancing all 64
//!   replicas through a single traversal of the wiring arrays via `u64`
//!   lane masks.
//!
//! Both arbitration regimes are timed: static priority (the mask fast
//! path — the headline) and random (the per-lane fallback, which still
//! shares the traversal, gather, and fault machinery). Besides the
//! Criterion report, the bench self-times both variants and writes
//! `BENCH_lane_routing.json` at the repository root in
//! ns-per-(port·replica). A bit-identical-output assertion guards the
//! comparison: every lane must match its scalar pass before timing means
//! anything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edn_core::{
    Arbiter, EdnParams, LaneEngine, PriorityArbiter, RandomArbiter, RouteRequest, RoutingEngine,
    MAX_LANES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn shapes() -> Vec<(&'static str, EdnParams)> {
    vec![
        (
            "EDN(64,16,4,2)",
            EdnParams::new(64, 16, 4, 2).expect("the MasPar shape is valid"),
        ),
        (
            "EDN(16,4,4,5)",
            EdnParams::new(16, 4, 4, 5).expect("the 4096-port shape is valid"),
        ),
        (
            "EDN(16,4,4,6)",
            EdnParams::new(16, 4, 4, 6).expect("the 16384-port shape is valid"),
        ),
    ]
}

fn full_load_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

/// One full-load batch per lane, seeds `0xED17 + lane`.
fn lane_batches(params: &EdnParams) -> Vec<Vec<RouteRequest>> {
    (0..MAX_LANES as u64)
        .map(|lane| full_load_batch(params, 0xED17 + lane))
        .collect()
}

/// The two arbitration regimes under test. Arbiters are rebuilt per run
/// in both variants (they are per-replica state, not engine state).
#[derive(Clone, Copy)]
enum Regime {
    Priority,
    Random,
}

impl Regime {
    fn name(self) -> &'static str {
        match self {
            Regime::Priority => "priority",
            Regime::Random => "random",
        }
    }

    fn build(self, lane: u64) -> Box<dyn Arbiter> {
        match self {
            Regime::Priority => Box::new(PriorityArbiter::new()),
            Regime::Random => Box::new(RandomArbiter::new(StdRng::seed_from_u64(0xA5B1 + lane))),
        }
    }
}

/// 64 sequential scalar passes; returns total delivered as the black-box
/// payload.
fn scalar_passes(engine: &mut RoutingEngine, batches: &[Vec<RouteRequest>], regime: Regime) -> u64 {
    let mut delivered = 0u64;
    for (lane, batch) in batches.iter().enumerate() {
        let mut arbiter = regime.build(lane as u64);
        delivered += engine.route(batch, arbiter.as_mut()).delivered_count() as u64;
    }
    delivered
}

/// One 64-lane pass over the same batches.
fn lane_pass(
    engine: &mut LaneEngine,
    slices: &[&[RouteRequest]],
    arbiters: &mut [Box<dyn Arbiter>],
    regime: Regime,
) -> u64 {
    for (lane, slot) in arbiters.iter_mut().enumerate() {
        *slot = regime.build(lane as u64);
    }
    engine
        .route_lanes(slices, arbiters)
        .iter()
        .map(|outcome| outcome.delivered_count() as u64)
        .sum()
}

/// Every lane of the lane pass must be bit-identical to its scalar pass.
fn assert_bit_identical(
    name: &str,
    params: EdnParams,
    batches: &[Vec<RouteRequest>],
    regime: Regime,
) {
    let mut scalar = RoutingEngine::from_params(params);
    let mut lanes = LaneEngine::from_params(params);
    let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
    let mut arbiters: Vec<Box<dyn Arbiter>> = (0..MAX_LANES as u64)
        .map(|lane| regime.build(lane))
        .collect();
    let outcomes = lanes.route_lanes(&slices, &mut arbiters);
    for (lane, (batch, outcome)) in batches.iter().zip(outcomes).enumerate() {
        let mut arbiter = regime.build(lane as u64);
        let expected = scalar.route(batch, arbiter.as_mut());
        assert_eq!(
            outcome,
            expected,
            "{name} {} lane {lane}: lane pass diverged from the scalar oracle",
            regime.name()
        );
    }
}

fn bench_lanes_vs_scalar(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("lane_routing");
    for (name, params) in shapes() {
        let batches = lane_batches(&params);
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        for regime in [Regime::Priority, Regime::Random] {
            assert_bit_identical(name, params, &batches, regime);
            let label = format!("{name}/{}", regime.name());
            let mut scalar = RoutingEngine::from_params(params);
            group.bench_with_input(
                BenchmarkId::new("scalar", &label),
                &batches,
                |bencher, batches| {
                    bencher.iter(|| black_box(scalar_passes(&mut scalar, batches, regime)))
                },
            );
            let mut lanes = LaneEngine::from_params(params);
            let mut arbiters: Vec<Box<dyn Arbiter>> = (0..MAX_LANES as u64)
                .map(|lane| regime.build(lane))
                .collect();
            group.bench_with_input(
                BenchmarkId::new("lanes", &label),
                &slices,
                |bencher, slices| {
                    bencher.iter(|| black_box(lane_pass(&mut lanes, slices, &mut arbiters, regime)))
                },
            );
        }
    }
    group.finish();
}

/// Fastest ns per run over `samples` short batches of `iters` runs (after
/// one warm-up batch). Short windows dodge interference bursts better
/// than long ones. The minimum, not the median: the self-timed numbers
/// are routinely produced on shared single-core machines where external
/// load — not the code under test — dominates the variance, and the
/// fastest window is the one with the least interference. Both variants
/// are measured with the same estimator, so the ratio stays fair.
fn min_ns(mut f: impl FnMut(), samples: usize, iters: u32) -> f64 {
    for _ in 0..iters {
        f();
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Self-timed comparison written to `BENCH_lane_routing.json` so the perf
/// trajectory lives in-tree (independent of the Criterion harness in
/// use).
fn write_json_trajectory(_criterion: &mut Criterion) {
    let mut entries = Vec::new();
    let mut headline = None;
    let mut best_priority = 0.0f64;
    for (name, params) in shapes() {
        let batches = lane_batches(&params);
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let port_replicas = (params.inputs() as usize * MAX_LANES) as f64;
        for regime in [Regime::Priority, Regime::Random] {
            assert_bit_identical(name, params, &batches, regime);
            let mut scalar_engine = RoutingEngine::from_params(params);
            let scalar = min_ns(
                || {
                    black_box(scalar_passes(&mut scalar_engine, &batches, regime));
                },
                25,
                3,
            ) / port_replicas;
            let mut lane_engine = LaneEngine::from_params(params);
            let mut arbiters: Vec<Box<dyn Arbiter>> = (0..MAX_LANES as u64)
                .map(|lane| regime.build(lane))
                .collect();
            let lanes = min_ns(
                || {
                    black_box(lane_pass(&mut lane_engine, &slices, &mut arbiters, regime));
                },
                25,
                3,
            ) / port_replicas;
            let speedup = scalar / lanes;
            if headline.is_none() {
                headline = Some(speedup);
            }
            if matches!(regime, Regime::Priority) {
                best_priority = best_priority.max(speedup);
            }
            println!(
                "{name} ({}): scalar {scalar:.3} ns, lanes {lanes:.3} ns per port-replica \
                 -> lane speedup {speedup:.2}x at {MAX_LANES} lanes",
                regime.name()
            );
            entries.push(format!(
                "    {{\"shape\": \"{name}\", \"ports\": {}, \"lanes\": {MAX_LANES}, \
                 \"arbiter\": \"{}\", \"scalar_ns_per_port_replica\": {scalar:.4}, \
                 \"lane_ns_per_port_replica\": {lanes:.4}, \"lane_speedup\": {speedup:.3}}}",
                params.inputs(),
                regime.name()
            ));
        }
    }
    let provenance = edn_bench::bench_provenance_json();
    let json = format!(
        "{{\n  \"bench\": \"lane_routing\",\n  \
         {provenance},\n  \
         \"workload\": \"64 full-load single-cycle replicas, one per lane; scalar = 64 \
         sequential engine passes, lanes = one 64-lane mask traversal\",\n  \
         \"unit\": \"ns per port-replica (min over 25 samples)\",\n  \
         \"headline_lane_speedup_priority_maspar\": {:.3},\n  \
         \"best_priority_lane_speedup\": {best_priority:.3},\n  \
         \"note\": \"Every lane is asserted bit-identical to its scalar pass before \
         timing. priority = static arbitration, fully mask-parallel (the headline \
         path); random = stateful arbitration, which falls back to per-lane select \
         calls on contended buckets but still shares the traversal, gather, and \
         occupancy machinery across all 64 replicas.\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        headline.expect("at least one configuration is benchmarked"),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lane_routing.json");
    std::fs::write(path, json).expect("write BENCH_lane_routing.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lanes_vs_scalar, write_json_trajectory
}
criterion_main!(benches);
