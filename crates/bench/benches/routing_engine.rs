//! Criterion bench: legacy per-call routing vs. the reused
//! [`RoutingEngine`] — the perf claim behind the engine refactor.
//!
//! Three variants route identical full-load uniform batches:
//!
//! * `legacy`  — `edn_core::reference::route_batch`, the pre-engine
//!   implementation (`HashSet` duplicate check, fresh `Vec`s per stage,
//!   per-switch buffers inside `Hyperbar::route`);
//! * `wrapper` — `edn_core::route_batch`, the compatibility wrapper that
//!   builds a fresh engine per call;
//! * `engine`  — one reused `RoutingEngine`: zero steady-state
//!   allocations.
//!
//! Besides the Criterion report, the bench self-times the three variants
//! and writes `BENCH_routing_engine.json` at the repository root so the
//! perf trajectory is tracked in-tree. Configs: the MasPar-shaped
//! `EDN(64,16,4,2)` (1024 ports) and the large `EDN(16,4,4,5)`
//! (4096 ports), both at full load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edn_core::{
    reference, route_batch, EdnParams, EdnTopology, PriorityArbiter, RouteRequest, RoutingEngine,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn full_load_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

fn configs() -> Vec<(&'static str, EdnParams)> {
    vec![
        // The MasPar MP-1 router shape, Section 5 of the paper.
        (
            "EDN(64,16,4,2)",
            EdnParams::new(64, 16, 4, 2).expect("valid parameters"),
        ),
        // A 4096-port member of the Figure 8 EDN(16,4,4,*) family.
        (
            "EDN(16,4,4,5)",
            EdnParams::new(16, 4, 4, 5).expect("valid parameters"),
        ),
    ]
}

fn bench_engine_vs_legacy(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("routing_engine");
    for (name, params) in configs() {
        let topology = EdnTopology::new(params);
        let batch = full_load_batch(&params, 0xED17);
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("legacy", name),
            &batch,
            |bencher, batch| {
                let mut arbiter = PriorityArbiter::new();
                bencher.iter(|| black_box(reference::route_batch(&topology, batch, &mut arbiter)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("wrapper", name),
            &batch,
            |bencher, batch| {
                let mut arbiter = PriorityArbiter::new();
                bencher.iter(|| black_box(route_batch(&topology, batch, &mut arbiter)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine", name),
            &batch,
            |bencher, batch| {
                let mut arbiter = PriorityArbiter::new();
                let mut engine = RoutingEngine::new(topology.clone());
                bencher.iter(|| black_box(engine.route(batch, &mut arbiter).delivered_count()));
            },
        );
    }
    group.finish();
}

/// Median ns per call over `samples` batches of `iters_per_sample` calls.
fn median_ns(mut f: impl FnMut(), samples: usize, iters_per_sample: u32) -> f64 {
    // One untimed batch to warm caches and buffer capacities.
    for _ in 0..iters_per_sample {
        f();
    }
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    timings[timings.len() / 2]
}

/// Self-timed comparison written to `BENCH_routing_engine.json` so the
/// perf trajectory lives in-tree (independent of the Criterion harness in
/// use).
fn write_json_trajectory(_criterion: &mut Criterion) {
    let mut entries = Vec::new();
    for (name, params) in configs() {
        let topology = EdnTopology::new(params);
        let batch = full_load_batch(&params, 0xED17);
        let (samples, iters) = if params.inputs() > 2048 {
            (9, 40)
        } else {
            (9, 200)
        };

        let mut arbiter = PriorityArbiter::new();
        let legacy = median_ns(
            || {
                black_box(reference::route_batch(&topology, &batch, &mut arbiter));
            },
            samples,
            iters,
        );
        let mut arbiter = PriorityArbiter::new();
        let wrapper = median_ns(
            || {
                black_box(route_batch(&topology, &batch, &mut arbiter));
            },
            samples,
            iters,
        );
        let mut arbiter = PriorityArbiter::new();
        let mut engine = RoutingEngine::new(topology.clone());
        let reused = median_ns(
            || {
                black_box(engine.route(&batch, &mut arbiter).delivered_count());
            },
            samples,
            iters,
        );

        let speedup_vs_legacy = legacy / reused;
        let speedup_vs_wrapper = wrapper / reused;
        println!(
            "{name}: legacy {legacy:.0} ns, wrapper {wrapper:.0} ns, engine {reused:.0} ns \
             per batch -> engine speedup {speedup_vs_legacy:.2}x vs legacy, \
             {speedup_vs_wrapper:.2}x vs wrapper"
        );
        entries.push(format!(
            "    {{\"config\": \"{name}\", \"ports\": {}, \"batch_len\": {}, \
             \"legacy_ns_per_batch\": {legacy:.1}, \"wrapper_ns_per_batch\": {wrapper:.1}, \
             \"engine_ns_per_batch\": {reused:.1}, \
             \"engine_speedup_vs_legacy\": {speedup_vs_legacy:.3}, \
             \"engine_speedup_vs_wrapper\": {speedup_vs_wrapper:.3}}}",
            params.inputs(),
            batch.len(),
        ));
    }
    let provenance = edn_bench::bench_provenance_json();
    let json = format!(
        "{{\n  \"bench\": \"routing_engine\",\n  {provenance},\n  \
         \"arbiter\": \"priority\",\n  \
         \"load\": 1.0,\n  \"unit\": \"ns per full-load batch (median)\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_routing_engine.json"
    );
    std::fs::write(path, json).expect("write BENCH_routing_engine.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_vs_legacy, write_json_trajectory
}
criterion_main!(benches);
