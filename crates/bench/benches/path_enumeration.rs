//! Criterion bench: Lemma-1 path tracing and Theorem-2 path enumeration.
//!
//! Tracing is the core of topology validation; enumeration walks all
//! `c^l` paths of a pair (64 for the benched network).

use criterion::{criterion_group, criterion_main, Criterion};
use edn_core::{EdnParams, EdnTopology};
use std::hint::black_box;

fn bench_trace(criterion: &mut Criterion) {
    let params = EdnParams::new(64, 16, 4, 2).expect("valid parameters");
    let topology = EdnTopology::new(params);
    criterion.bench_function("trace_path_maspar", |bencher| {
        bencher.iter(|| {
            black_box(
                topology
                    .trace_path(black_box(513), black_box(700), &[1, 2])
                    .expect("valid trace"),
            )
        });
    });
}

fn bench_enumerate(criterion: &mut Criterion) {
    let params = EdnParams::new(16, 4, 4, 3).expect("valid parameters"); // 64 paths
    let topology = EdnTopology::new(params);
    criterion.bench_function("enumerate_paths_64", |bencher| {
        bencher.iter(|| {
            black_box(
                topology
                    .enumerate_paths(black_box(100), black_box(200), 1 << 20)
                    .expect("within limit"),
            )
        });
    });
}

fn bench_closed_form(criterion: &mut Criterion) {
    let params = EdnParams::new(64, 16, 4, 2).expect("valid parameters");
    let topology = EdnTopology::new(params);
    criterion.bench_function("lemma1_closed_form", |bencher| {
        bencher.iter(|| {
            black_box(
                topology
                    .lemma1_line_after_stage(black_box(513), black_box(700), 2, 3)
                    .expect("valid arguments"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_trace, bench_enumerate, bench_closed_form
}
criterion_main!(benches);
