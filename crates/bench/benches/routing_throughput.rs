//! Criterion bench: one-pass batch routing throughput vs network size.
//!
//! Measures `edn_core::route_batch` on full-load uniform batches for the
//! Figure 7/8 network families — the inner loop of every Monte-Carlo
//! experiment in this repository.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edn_core::{route_batch, EdnParams, EdnTopology, PriorityArbiter, RouteRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn uniform_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

fn bench_route_batch(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("route_batch");
    for l in [2u32, 3, 4, 5] {
        let params = EdnParams::new(16, 4, 4, l).expect("valid parameters");
        let topology = EdnTopology::new(params);
        let batch = uniform_batch(&params, 42);
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("EDN(16,4,4,l)", params.inputs()),
            &batch,
            |bencher, batch| {
                let mut arbiter = PriorityArbiter::new();
                bencher.iter(|| black_box(route_batch(&topology, batch, &mut arbiter)));
            },
        );
    }
    for l in [3u32, 5, 7] {
        let params = EdnParams::new(8, 8, 1, l).expect("valid parameters");
        let topology = EdnTopology::new(params);
        let batch = uniform_batch(&params, 43);
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("delta(8,8,1,l)", params.inputs()),
            &batch,
            |bencher, batch| {
                let mut arbiter = PriorityArbiter::new();
                bencher.iter(|| black_box(route_batch(&topology, batch, &mut arbiter)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_route_batch
}
criterion_main!(benches);
