//! Criterion bench: hyperbar arbitration policies under full contention.
//!
//! The hyperbar switch is routed once per switch per stage per cycle; its
//! arbitration cost dominates the simulator. Compares the three policies
//! on a saturated `H(64 -> 16 x 4)` (the MasPar switch shape).

use criterion::{criterion_group, criterion_main, Criterion};
use edn_core::{Hyperbar, PriorityArbiter, RandomArbiter, RoundRobinArbiter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn saturated_requests(a: u64, b: u64, seed: u64) -> Vec<Option<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..a).map(|_| Some(rng.gen_range(0..b))).collect()
}

fn bench_policies(criterion: &mut Criterion) {
    let switch = Hyperbar::new(64, 16, 4).expect("valid switch");
    let requests = saturated_requests(64, 16, 7);
    let mut group = criterion.benchmark_group("hyperbar_arbitration");

    group.bench_function("priority", |bencher| {
        let mut arbiter = PriorityArbiter::new();
        bencher.iter(|| black_box(switch.route(&requests, &mut arbiter).expect("valid digits")));
    });
    group.bench_function("round_robin", |bencher| {
        let mut arbiter = RoundRobinArbiter::new();
        bencher.iter(|| black_box(switch.route(&requests, &mut arbiter).expect("valid digits")));
    });
    group.bench_function("random", |bencher| {
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(1));
        bencher.iter(|| black_box(switch.route(&requests, &mut arbiter).expect("valid digits")));
    });
    group.finish();
}

fn bench_switch_shapes(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("hyperbar_shapes");
    for (a, b, c) in [(8u64, 4u64, 2u64), (16, 4, 4), (64, 16, 4), (64, 64, 1)] {
        let switch = Hyperbar::new(a, b, c).expect("valid switch");
        let requests = saturated_requests(a, b, a ^ b);
        group.bench_function(format!("H({a}->{b}x{c})"), |bencher| {
            let mut arbiter = PriorityArbiter::new();
            bencher
                .iter(|| black_box(switch.route(&requests, &mut arbiter).expect("valid digits")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_policies, bench_switch_shapes
}
criterion_main!(benches);
