//! FIG5-6 — the paper's Figures 5 and 6: the identity permutation on
//! `EDN(64,16,4,2)`.
//!
//! Figure 5's network "is incapable of performing the identity permutation
//! in one pass": all 64 sources of each first-stage hyperbar want the same
//! capacity-4 bucket, so only 64 of 1024 messages survive. Figure 6
//! retires the tag bits in a different order and appends the inverse
//! permutation stage (Corollary 2), after which the identity routes
//! without any conflict. This binary measures both, plus the multi-pass
//! completion time of the unmodified network.
//!
//! Runs on the `edn_sweep` harness: the one-pass variants execute as pool
//! tasks on per-worker cached engines (the reordered variant exercising
//! the engine's inverse-order cache); `--threads/--out` as everywhere.

use edn_bench::{fmt_f, SweepArgs, SweepWorker};
use edn_core::{EdnParams, PriorityArbiter, RetirementOrder, RouteRequest};
use edn_sweep::{run_indexed, Table};
use std::collections::HashSet;

fn main() {
    let args = SweepArgs::parse(
        "fig05_06_identity",
        "Figures 5-6: the identity permutation, unmodified vs bit-reordered EDN(64,16,4,2).",
        1,
    );
    let params = EdnParams::new(64, 16, 4, 2).expect("paper parameters are valid");
    let identity: Vec<RouteRequest> = (0..params.inputs())
        .map(|s| RouteRequest::new(s, s))
        .collect();
    let order = RetirementOrder::rotate_left(params.output_bits(), params.log2_b())
        .expect("valid rotation");

    // --- Figures 5 and 6 as two pool tasks: unmodified one-pass routing
    // and the bit-reordered + inverse-stage construction. ---
    let outcomes = run_indexed(args.threads, 2, SweepWorker::new, |worker, index| {
        let engine = worker.engine(&params);
        if index == 0 {
            engine
                .route(&identity, &mut PriorityArbiter::new())
                .to_outcome()
        } else {
            engine
                .route_reordered(&identity, &order, &mut PriorityArbiter::new())
                .to_outcome()
        }
    });
    let (outcome, reordered) = (&outcomes[0], &outcomes[1]);
    let mut table = Table::new(
        "FIG5: identity permutation, unmodified EDN(64,16,4,2)",
        &["variant", "offered", "delivered", "acceptance"],
    );
    table.row(vec![
        "unmodified (Fig 5)".to_string(),
        outcome.offered().to_string(),
        outcome.delivered_count().to_string(),
        fmt_f(outcome.acceptance_rate(), 4),
    ]);
    table.row(vec![
        "bit-reordered + inverse stage (Fig 6)".to_string(),
        reordered.offered().to_string(),
        reordered.delivered_count().to_string(),
        fmt_f(reordered.acceptance_rate(), 4),
    ]);
    table.print();
    println!(
        "Paper: Fig 5 network cannot route the identity in one pass (64/1024 here);\n\
         Fig 6 modification performs it completely ({}/1024).\n",
        reordered.delivered_count()
    );
    for &(source, output) in reordered.delivered() {
        assert_eq!(source, output, "compensated delivery must be the identity");
    }

    // --- Multi-pass completion of the unmodified network (inherently
    // sequential: each pass feeds the next). ---
    let mut worker = SweepWorker::new();
    let engine = worker.engine(&params);
    let mut remaining: Vec<RouteRequest> = identity.clone();
    let mut passes = Table::new(
        "FIG5b: multi-pass identity on the unmodified network",
        &["pass", "offered", "delivered", "cumulative"],
    );
    let mut cumulative = 0usize;
    let mut pass = 0u32;
    while !remaining.is_empty() && pass < 64 {
        pass += 1;
        let outcome = engine.route(&remaining, &mut PriorityArbiter::new());
        let delivered: HashSet<u64> = outcome
            .delivered()
            .iter()
            .map(|&(source, _)| source)
            .collect();
        cumulative += delivered.len();
        passes.row(vec![
            pass.to_string(),
            remaining.len().to_string(),
            delivered.len().to_string(),
            cumulative.to_string(),
        ]);
        remaining.retain(|r| !delivered.contains(&r.source));
    }
    passes.print();
    println!(
        "The unmodified network needs {pass} priority-arbitrated passes for what the\n\
         Figure 6 construction does in one — the cost of ignoring Corollary 2."
    );
    args.emit(&[&table, &passes]);
}
