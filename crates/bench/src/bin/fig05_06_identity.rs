//! FIG5-6 — the paper's Figures 5 and 6: the identity permutation on
//! `EDN(64,16,4,2)`.
//!
//! Figure 5's network "is incapable of performing the identity permutation
//! in one pass": all 64 sources of each first-stage hyperbar want the same
//! capacity-4 bucket, so only 64 of 1024 messages survive. Figure 6
//! retires the tag bits in a different order and appends the inverse
//! permutation stage (Corollary 2), after which the identity routes
//! without any conflict. This binary measures both, plus the multi-pass
//! completion time of the unmodified network.
//!
//! Runs on the `edn_sweep` streaming harness: the one-pass variants
//! execute as pool tasks on per-worker cached engines (the reordered
//! variant exercising the engine's inverse-order cache);
//! `--threads/--out/--shard` as everywhere.

use edn_bench::{fmt_f, SweepArgs, SweepWorker};
use edn_core::{EdnParams, PriorityArbiter, RetirementOrder, RouteRequest};
use edn_sweep::Table;
use std::collections::HashSet;

fn main() {
    let args = SweepArgs::parse(
        "fig05_06_identity",
        "Figures 5-6: the identity permutation, unmodified vs bit-reordered EDN(64,16,4,2).",
        1,
    );
    let params = EdnParams::new(64, 16, 4, 2).expect("paper parameters are valid");
    let identity: Vec<RouteRequest> = (0..params.inputs())
        .map(|s| RouteRequest::new(s, s))
        .collect();
    let order = RetirementOrder::rotate_left(params.output_bits(), params.log2_b())
        .expect("valid rotation");

    // --- Multi-pass completion of the unmodified network (inherently
    // sequential: each pass feeds the next), computed first so the
    // table's row count is known when the emission plan is laid down. ---
    let mut worker = SweepWorker::new();
    let engine = worker.engine(&params);
    let mut remaining: Vec<RouteRequest> = identity.clone();
    let mut pass_rows: Vec<Vec<String>> = Vec::new();
    let mut cumulative = 0usize;
    let mut pass = 0u32;
    while !remaining.is_empty() && pass < 64 {
        pass += 1;
        let outcome = engine.route(&remaining, &mut PriorityArbiter::new());
        let delivered: HashSet<u64> = outcome
            .delivered()
            .iter()
            .map(|&(source, _)| source)
            .collect();
        cumulative += delivered.len();
        pass_rows.push(vec![
            pass.to_string(),
            remaining.len().to_string(),
            delivered.len().to_string(),
            cumulative.to_string(),
        ]);
        remaining.retain(|r| !delivered.contains(&r.source));
    }

    // --- Figures 5 and 6 as two pool tasks: unmodified one-pass routing
    // and the bit-reordered + inverse-stage construction. ---
    let mut table = Table::new(
        "FIG5: identity permutation, unmodified EDN(64,16,4,2)",
        &["variant", "offered", "delivered", "acceptance"],
    );
    let mut passes = Table::new(
        "FIG5b: multi-pass identity on the unmodified network",
        &["pass", "offered", "delivered", "cumulative"],
    );
    let mut emit = args.plan_emit(&[(&table, 2), (&passes, pass_rows.len())]);
    let delivered_counts = emit.run_table(
        &mut table,
        SweepWorker::new,
        |worker, row| {
            let engine = worker.engine(&params);
            let (label, outcome) = if row == 0 {
                (
                    "unmodified (Fig 5)",
                    engine
                        .route(&identity, &mut PriorityArbiter::new())
                        .to_outcome(),
                )
            } else {
                let outcome = engine
                    .route_reordered(&identity, &order, &mut PriorityArbiter::new())
                    .to_outcome();
                for &(source, output) in outcome.delivered() {
                    assert_eq!(source, output, "compensated delivery must be the identity");
                }
                ("bit-reordered + inverse stage (Fig 6)", outcome)
            };
            let cells = vec![
                label.to_string(),
                outcome.offered().to_string(),
                outcome.delivered_count().to_string(),
                fmt_f(outcome.acceptance_rate(), 4),
            ];
            (cells, outcome.delivered_count())
        },
        // Cached replay: the delivered count sits in the third column.
        |cells, _| cells[2].parse().expect("cached delivered count"),
    );
    table.print();
    if emit.is_full() {
        println!(
            "Paper: Fig 5 network cannot route the identity in one pass ({}/1024 here);\n\
             Fig 6 modification performs it completely ({}/1024).\n",
            delivered_counts[0], delivered_counts[1]
        );
    }

    emit.table_rows(&mut passes, pass_rows);
    passes.print();
    println!(
        "The unmodified network needs {pass} priority-arbitrated passes for what the\n\
         Figure 6 construction does in one — the cost of ignoring Corollary 2."
    );
    emit.finish();
}
