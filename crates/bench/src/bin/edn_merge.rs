//! `edn_merge` — reassemble sharded sweep artifacts.
//!
//! ```text
//! edn_merge part1.jsonl part2.jsonl part3.jsonl --out merged.jsonl
//! edn_merge part*.jsonl                  # merged artifact on stdout
//! edn_merge --check run.jsonl [...]      # validate only, merge nothing
//! ```
//!
//! The inputs must be the complete shard set of one logical run (any
//! order): same spec hash, shard indices exactly `1..=N`, and row
//! sequence numbers covering `0..rows` exactly once. The merged output
//! is **byte-identical** to the artifact a single unsharded run writes —
//! header included — so `cmp merged.jsonl full.jsonl` is the integrity
//! check CI runs.
//!
//! `--check` validates artifacts individually instead: header parses and
//! hashes correctly, every row line parses as JSON, and the rows cover
//! exactly the file's declared shard slice. Unlike merging — which stops
//! at the first structural problem, since nothing downstream is safe —
//! `--check` is a diagnostic: it reports **every** problem in every file
//! before exiting nonzero, so one pass over a broken artifact set names
//! all the repairs.

use edn_sweep::merge::{check_file_all, merge_files};
use edn_sweep::metrics::{check_metrics_text, check_trace_text};
use std::io::Write as _;
use std::path::PathBuf;

const USAGE: &str = "reassemble sharded sweep artifacts\n\n\
    Usage: edn_merge PART.jsonl... [--out PATH]\n       \
    edn_merge --check FILE.jsonl...\n       \
    edn_merge --check-metrics FILE.metrics.jsonl... FILE.trace.jsonl...\n\n\
    Options:\n  \
    --out PATH       write the merged artifact to PATH (default: stdout)\n  \
    --check          validate each file (header, JSON rows, shard coverage)\n                   \
    without merging\n  \
    --check-metrics  validate metrics and trace sidecars (strict JSON, known\n                   \
    record kinds, required fields; *.trace.jsonl files also\n                   \
    get header-first and monotone-cycle checks) without merging\n  \
    --help           print this message";

fn main() {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut check = false;
    let mut check_metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--check" => check = true,
            "--check-metrics" => check_metrics = true,
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => fail("--out expects a value"),
            },
            flag if flag.starts_with("--") => fail(&format!("unknown flag `{flag}`")),
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        fail("no input artifacts given");
    }
    if (check || check_metrics) && out.is_some() {
        fail("--check validates without merging; drop --out (or drop --check to merge)");
    }
    if check && check_metrics {
        fail("--check and --check-metrics validate different file kinds; pick one");
    }

    if check_metrics {
        // Metrics sidecars are per-process observability, never merged:
        // validate each one stands alone, reporting every problem in
        // every file before the nonzero exit.
        let mut records = 0usize;
        let mut errors = 0usize;
        for path in &inputs {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(error) => {
                    eprintln!("edn_merge: {}: {error}", path.display());
                    errors += 1;
                    continue;
                }
            };
            // Trace sidecars share the validation pass but have their
            // own schema (header-first, event whitelist, monotone
            // per-packet cycles); the filename suffix dispatches.
            let is_trace = path
                .file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.ends_with(".trace.jsonl"));
            let checked = if is_trace {
                check_trace_text(&text)
            } else {
                check_metrics_text(&text)
            };
            match checked {
                Ok(count) => {
                    let kind = if is_trace { "trace" } else { "metric" };
                    eprintln!("{}: ok — {count} {kind} records", path.display());
                    records += count;
                }
                Err(problems) => {
                    for problem in &problems {
                        eprintln!("edn_merge: {}: {problem}", path.display());
                    }
                    errors += problems.len();
                }
            }
        }
        if errors > 0 {
            eprintln!("{} file(s) checked, {errors} error(s) found", inputs.len());
            std::process::exit(1);
        }
        eprintln!(
            "{} file(s) ok, {records} metric records total",
            inputs.len()
        );
        return;
    }

    if check {
        let mut rows = 0usize;
        let mut errors = 0usize;
        for path in &inputs {
            match check_file_all(path) {
                Ok(file) => {
                    eprintln!(
                        "{}: ok — {} (shard {}) {} rows, spec {:016x}",
                        path.display(),
                        file.header.binary,
                        file.header.shard,
                        file.rows.len(),
                        file.header.spec_hash()
                    );
                    rows += file.rows.len();
                }
                Err(problems) => {
                    // Report every problem in every file before the
                    // nonzero exit: --check is the diagnostic pass.
                    for problem in &problems {
                        eprintln!("edn_merge: {problem}");
                    }
                    errors += problems.len();
                }
            }
        }
        if errors > 0 {
            eprintln!("{} file(s) checked, {errors} error(s) found", inputs.len());
            std::process::exit(1);
        }
        eprintln!("{} file(s) ok, {rows} rows total", inputs.len());
        return;
    }

    let merged = match merge_files(&inputs) {
        Ok(merged) => merged,
        Err(error) => fail(&error.to_string()),
    };
    let text = merged.to_text();
    match out {
        Some(path) => {
            if let Err(error) = std::fs::write(&path, &text) {
                fail(&format!("writing {}: {error}", path.display()));
            }
            eprintln!(
                "merged {} shard(s) -> {} ({} rows)",
                inputs.len(),
                path.display(),
                merged.rows.len()
            );
        }
        None => {
            if std::io::stdout().write_all(text.as_bytes()).is_err() {
                std::process::exit(1);
            }
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("edn_merge: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}
