//! TAB-PERM — Section 3.2.1, Eq. (5): acceptance under permutation
//! traffic.
//!
//! Lemma 2: when the offered requests form a permutation, the last two
//! stages never block, so `PA_p >= PA`. This binary tabulates `PA_p` vs
//! `PA` across the Figure 7/8 families and validates both against
//! Monte-Carlo simulation of the real fabric.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per table
//! row (the simulations dominate and their cost varies with network
//! size), each row streamed as its simulation completes;
//! `--threads/--cycles/--out/--shard` as everywhere.

use edn_analytic::pa::probability_of_acceptance;
use edn_analytic::permutation::permutation_pa;
use edn_bench::{figure7_families, figure8_families, fmt_f, SweepArgs, Table};
use edn_core::EdnParams;
use edn_sim::{estimate_pa_permutation, ArbiterKind};

fn main() {
    let args = SweepArgs::parse(
        "tab_permutation",
        "Section 3.2.1: permutation-traffic acceptance (Eq. 5), model vs simulation.",
        1,
    );
    let cycles = args.cycles_or(60);
    println!("Section 3.2.1: permutation routing (Eq. 5 with Lemma 2).\n");

    let mut table = Table::new(
        "TAB-PERM: PA_p(1) vs PA(1), analytic + simulated",
        &[
            "network",
            "N",
            "PA(1)",
            "PA_p(1) model",
            "PA_p(1) simulated",
            "CI95 +-",
        ],
    );
    // One medium size per family keeps simulation affordable.
    let points: Vec<(u32, EdnParams)> = figure7_families()
        .into_iter()
        .chain(figure8_families())
        .filter_map(|family| {
            family
                .up_to(5000)
                .iter()
                .rev()
                .find(|(_, p)| p.inputs() >= 256)
                .copied()
        })
        .collect();
    let mut emit = args.plan_emit(&[(&table, points.len())]);
    emit.run_rows(
        &mut table,
        || (),
        |(), row| {
            let (l, params) = points[row];
            let pa = probability_of_acceptance(&params, 1.0);
            let pap = permutation_pa(&params, 1.0);
            let sim =
                estimate_pa_permutation(&params, 1.0, ArbiterKind::Random, cycles, 42 + l as u64);
            vec![
                params.to_string(),
                params.inputs().to_string(),
                fmt_f(pa, 4),
                fmt_f(pap, 4),
                fmt_f(sim.mean, 4),
                fmt_f(1.96 * sim.std_error, 4),
            ]
        },
    );
    table.print();
    println!("Shape check (Lemma 2): PA_p >= PA everywhere; simulation should bracket");
    println!("the model within a few times the CI (the model inherits the independence");
    println!("approximation of Eq. 4 for the interior stages).");
    emit.finish();
}
