//! TAB-PERM — Section 3.2.1, Eq. (5): acceptance under permutation
//! traffic.
//!
//! Lemma 2: when the offered requests form a permutation, the last two
//! stages never block, so `PA_p >= PA`. This binary tabulates `PA_p` vs
//! `PA` across the Figure 7/8 families and validates both against
//! Monte-Carlo simulation of the real fabric.

use edn_analytic::pa::probability_of_acceptance;
use edn_analytic::permutation::permutation_pa;
use edn_bench::{figure7_families, figure8_families, fmt_f, Table};
use edn_sim::{estimate_pa_permutation, ArbiterKind};

fn main() {
    println!("Section 3.2.1: permutation routing (Eq. 5 with Lemma 2).\n");

    let mut table = Table::new(
        "TAB-PERM: PA_p(1) vs PA(1), analytic + simulated",
        &[
            "network",
            "N",
            "PA(1)",
            "PA_p(1) model",
            "PA_p(1) simulated",
            "CI95 +-",
        ],
    );
    for family in figure7_families().into_iter().chain(figure8_families()) {
        // One medium size per family keeps simulation affordable.
        let Some(&(l, params)) = family
            .up_to(5000)
            .iter()
            .rev()
            .find(|(_, p)| p.inputs() >= 256)
        else {
            continue;
        };
        let pa = probability_of_acceptance(&params, 1.0);
        let pap = permutation_pa(&params, 1.0);
        let sim = estimate_pa_permutation(&params, 1.0, ArbiterKind::Random, 60, 42 + l as u64);
        table.row(vec![
            params.to_string(),
            params.inputs().to_string(),
            fmt_f(pa, 4),
            fmt_f(pap, 4),
            fmt_f(sim.mean, 4),
            fmt_f(1.96 * sim.std_error, 4),
        ]);
    }
    table.print();
    println!("Shape check (Lemma 2): PA_p >= PA everywhere; simulation should bracket");
    println!("the model within a few times the CI (the model inherits the independence");
    println!("approximation of Eq. 4 for the interior stages).");
}
