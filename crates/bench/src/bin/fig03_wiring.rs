//! FIG3 — the paper's Figure 3 (generalized EDN) as a textual schematic.
//!
//! Prints, for a small EDN, every switch with its port ranges and the
//! interstage `gamma` wiring as an explicit wire map, making the
//! "fix log2(c) bits, rotate the rest by log2(a/c)" rule visible. Bucket
//! wires stay adjacent through the permutation — the structural fact
//! behind both multipath routing and the fault-tolerance analysis.

use edn_core::{EdnParams, EdnTopology};

fn print_network(params: &EdnParams) {
    let topology = EdnTopology::new(*params);
    println!(
        "=== {params}: {} inputs -> {} outputs ===",
        params.inputs(),
        params.outputs()
    );
    for stage in 1..=params.l() {
        let switches = params.hyperbars_in_stage(stage);
        println!(
            "\nstage {stage}: {switches} x H({} -> {} x {}), entry lines per switch:",
            params.a(),
            params.b(),
            params.c()
        );
        for switch in 0..switches {
            let low = switch * params.a();
            let high = low + params.a() - 1;
            let exit_low = switch * params.b() * params.c();
            let exit_high = exit_low + params.b() * params.c() - 1;
            println!("  S{switch}: entries {low}..{high}  ->  exits {exit_low}..{exit_high}");
        }
        let gamma = topology.interstage_gamma(stage);
        if gamma.is_identity() {
            println!(
                "  wiring to stage {}: identity (buckets feed crossbars directly)",
                stage + 1
            );
        } else {
            println!("  wiring to stage {} via {gamma}:", stage + 1);
            let wires = params.wires_after_stage(stage);
            let mut line = String::from("   ");
            for y in 0..wires {
                line.push_str(&format!(" {y}->{}", gamma.apply(y)));
                if (y + 1) % 8 == 0 {
                    println!("{line}");
                    line = String::from("   ");
                }
            }
            if line.trim() != "" {
                println!("{line}");
            }
        }
    }
    println!(
        "\nstage {}: {} x {}x{} crossbars; crossbar j owns outputs j*{}..j*{}+{}",
        params.l() + 1,
        params.crossbar_count(),
        params.c(),
        params.c(),
        params.c(),
        params.c(),
        params.c() - 1
    );
    // Show the bucket-adjacency invariant: all c wires of one bucket land
    // on the same next-stage switch.
    if params.l() >= 2 && params.c() > 1 {
        let gamma = topology.interstage_gamma(1);
        let bucket_base = params.c(); // bucket 1 of switch 0
        let first = gamma.apply(bucket_base) / params.a();
        let all_same = (0..params.c()).all(|k| gamma.apply(bucket_base + k) / params.a() == first);
        println!(
            "\nbucket adjacency check (stage 1, switch 0, bucket 1): all {} wires reach switch {first} of stage 2: {}",
            params.c(),
            all_same
        );
        assert!(all_same);
    }
    println!();
}

fn main() {
    println!("Figure 3: the generalized EDN wiring, rendered from the implementation.\n");
    // Small enough to read in full.
    print_network(&EdnParams::new(4, 2, 2, 2).expect("valid parameters"));
    // The paper's Figure 4 instance.
    print_network(&EdnParams::new(16, 4, 4, 2).expect("valid parameters"));
}
