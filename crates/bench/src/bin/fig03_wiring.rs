//! FIG3 — the paper's Figure 3 (generalized EDN) as a textual schematic.
//!
//! Prints, for a small EDN, every switch with its port ranges and the
//! interstage `gamma` wiring as an explicit wire map, making the
//! "fix log2(c) bits, rotate the rest by log2(a/c)" rule visible. Bucket
//! wires stay adjacent through the permutation — the structural fact
//! behind both multipath routing and the fault-tolerance analysis.
//!
//! Runs on the `edn_sweep` streaming harness: the per-network schematics
//! render as pool tasks (one summary row each, streamed as completed)
//! and print in order; `--threads/--out/--shard` as everywhere.

use edn_bench::{SweepArgs, Table};
use edn_core::{EdnParams, EdnTopology};
use std::fmt::Write as _;

/// Renders the schematic of one network, returning the text and the
/// summary cells for the JSON table.
fn render_network(params: &EdnParams) -> (String, Vec<String>) {
    let topology = EdnTopology::new(*params);
    let mut out = String::new();
    let mut line_out = |text: String| {
        out.push_str(&text);
        out.push('\n');
    };
    line_out(format!(
        "=== {params}: {} inputs -> {} outputs ===",
        params.inputs(),
        params.outputs()
    ));
    for stage in 1..=params.l() {
        let switches = params.hyperbars_in_stage(stage);
        line_out(format!(
            "\nstage {stage}: {switches} x H({} -> {} x {}), entry lines per switch:",
            params.a(),
            params.b(),
            params.c()
        ));
        for switch in 0..switches {
            let low = switch * params.a();
            let high = low + params.a() - 1;
            let exit_low = switch * params.b() * params.c();
            let exit_high = exit_low + params.b() * params.c() - 1;
            line_out(format!(
                "  S{switch}: entries {low}..{high}  ->  exits {exit_low}..{exit_high}"
            ));
        }
        let gamma = topology.interstage_gamma(stage);
        if gamma.is_identity() {
            line_out(format!(
                "  wiring to stage {}: identity (buckets feed crossbars directly)",
                stage + 1
            ));
        } else {
            line_out(format!("  wiring to stage {} via {gamma}:", stage + 1));
            let wires = params.wires_after_stage(stage);
            let mut line = String::from("   ");
            for y in 0..wires {
                write!(line, " {y}->{}", gamma.apply(y)).expect("write to string");
                if (y + 1) % 8 == 0 {
                    line_out(line);
                    line = String::from("   ");
                }
            }
            if line.trim() != "" {
                line_out(line);
            }
        }
    }
    line_out(format!(
        "\nstage {}: {} x {}x{} crossbars; crossbar j owns outputs j*{}..j*{}+{}",
        params.l() + 1,
        params.crossbar_count(),
        params.c(),
        params.c(),
        params.c(),
        params.c(),
        params.c() - 1
    ));
    // Show the bucket-adjacency invariant: all c wires of one bucket land
    // on the same next-stage switch.
    let mut bucket_adjacent = String::from("n/a");
    if params.l() >= 2 && params.c() > 1 {
        let gamma = topology.interstage_gamma(1);
        let bucket_base = params.c(); // bucket 1 of switch 0
        let first = gamma.apply(bucket_base) / params.a();
        let all_same = (0..params.c()).all(|k| gamma.apply(bucket_base + k) / params.a() == first);
        line_out(format!(
            "\nbucket adjacency check (stage 1, switch 0, bucket 1): all {} wires reach switch {first} of stage 2: {}",
            params.c(),
            all_same
        ));
        assert!(all_same);
        bucket_adjacent = all_same.to_string();
    }
    let summary = vec![
        params.to_string(),
        params.inputs().to_string(),
        params.l().to_string(),
        params.hyperbars_in_stage(1).to_string(),
        params.crossbar_count().to_string(),
        bucket_adjacent,
    ];
    (out, summary)
}

fn main() {
    let args = SweepArgs::parse(
        "fig03_wiring",
        "Figure 3: the generalized EDN wiring, rendered from the implementation.",
        1,
    );
    println!("Figure 3: the generalized EDN wiring, rendered from the implementation.\n");
    let networks = [
        // Small enough to read in full.
        EdnParams::new(4, 2, 2, 2).expect("valid parameters"),
        // The paper's Figure 4 instance.
        EdnParams::new(16, 4, 4, 2).expect("valid parameters"),
    ];
    let mut summary = Table::new(
        "FIG3: stage inventory summary",
        &[
            "network",
            "inputs",
            "stages l",
            "hyperbars/stage",
            "crossbars",
            "bucket adjacency",
        ],
    );
    let mut emit = args.plan_emit(&[(&summary, networks.len())]);
    let rendered = emit.run_table(
        &mut summary,
        || (),
        |(), row| {
            let (text, cells) = render_network(&networks[row]);
            (cells, text)
        },
        // Cached replay: the drawing is pure topology, cheap to redo.
        |_, row| render_network(&networks[row]).0,
    );
    for text in rendered {
        println!("{text}");
    }
    summary.print();
    emit.finish();
}
