//! TAB-SCHEDULE — (extension) cluster scheduling ablation for RA-EDN.
//!
//! Section 5 assumes a *random* schedule ("this schedule can be very
//! expensive to compute" — of the conflict-free ideal) and models the
//! permutation time as `q/PA(1) + J`. This ablation measures how much of
//! the gap to the ideal a cheap greedy distinct-destination schedule
//! recovers: it removes output-port contention almost entirely, leaving
//! only internal blocking.
//!
//! Lower bound for reference: a conflict-free schedule on a network with
//! permutation acceptance `PA_p(1)` would need about `q / PA_p(1)` cycles.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per system
//! row (both schedules measured with identical seeds) — the MasPar-sized
//! runs dwarf the small ones, the exact imbalance stealing absorbs;
//! `--threads/--cycles/--out/--shard` as everywhere (`--cycles`
//! overrides the per-system trial counts).

use edn_analytic::permutation::permutation_pa;
use edn_analytic::simd::RaEdnModel;
use edn_bench::{fmt_f, SweepArgs, Table};
use edn_sim::{ArbiterKind, RaEdnSystem, Schedule};

fn main() {
    let args = SweepArgs::parse(
        "tab_schedule",
        "TAB-SCHEDULE: random vs greedy distinct-destination RA-EDN schedules.",
        1,
    );
    println!("TAB-SCHEDULE: random vs greedy distinct-destination schedules.\n");

    let mut table = Table::new(
        "TAB-SCHEDULE: cycles to route a random permutation",
        &[
            "system",
            "PEs",
            "model q/PA+J",
            "random sim",
            "greedy sim",
            "ideal q/PA_p",
        ],
    );
    let systems = [
        (4u64, 2u64, 2u32, 8u64, 8u32),
        (4, 2, 2, 16, 8),
        (16, 4, 2, 16, 4), // the MasPar shape
    ];
    // One pool task per system row: both schedules of a system are
    // independent measurements with identical seeds.
    let mut emit = args.plan_emit(&[(&table, systems.len())]);
    emit.run_rows(
        &mut table,
        || (),
        |(), row| {
            let (b, c, l, q, trials) = systems[row];
            let trials = args.cycles.unwrap_or(trials);
            let measure = |schedule| {
                let mut system = RaEdnSystem::new(b, c, l, q, ArbiterKind::Random, 0xAB1E)
                    .expect("valid parameters");
                system.measure_mean_cycles_scheduled(trials, schedule)
            };
            let (t_random, se_random) = measure(Schedule::Random);
            let (t_greedy, se_greedy) = measure(Schedule::GreedyDistinct);
            let model = RaEdnModel::new(b, c, l, q).expect("valid parameters");
            let timing = model.expected_permutation_cycles();
            let ideal = q as f64 / permutation_pa(model.params(), 1.0);
            vec![
                model.to_string(),
                model.processors().to_string(),
                fmt_f(timing.total_cycles, 2),
                format!("{:.2} +- {:.2}", t_random, 1.96 * se_random),
                format!("{:.2} +- {:.2}", t_greedy, 1.96 * se_greedy),
                fmt_f(ideal, 2),
            ]
        },
    );
    table.print();
    println!("Reading: the greedy schedule removes output contention (the crossbar-");
    println!("stage losses) and recovers a large share of the gap between the random");
    println!("schedule and the conflict-free ideal, at O(p) bookkeeping per cycle —");
    println!("the cheap alternative the paper's reference [31] motivates.");
    emit.finish();
}
