//! TAB-SCHEDULE — (extension) cluster scheduling ablation for RA-EDN.
//!
//! Section 5 assumes a *random* schedule ("this schedule can be very
//! expensive to compute" — of the conflict-free ideal) and models the
//! permutation time as `q/PA(1) + J`. This ablation measures how much of
//! the gap to the ideal a cheap greedy distinct-destination schedule
//! recovers: it removes output-port contention almost entirely, leaving
//! only internal blocking.
//!
//! Lower bound for reference: a conflict-free schedule on a network with
//! permutation acceptance `PA_p(1)` would need about `q / PA_p(1)` cycles.

use edn_analytic::permutation::permutation_pa;
use edn_analytic::simd::RaEdnModel;
use edn_bench::{fmt_f, Table};
use edn_sim::{ArbiterKind, RaEdnSystem, Schedule};

fn main() {
    println!("TAB-SCHEDULE: random vs greedy distinct-destination schedules.\n");

    let mut table = Table::new(
        "TAB-SCHEDULE: cycles to route a random permutation",
        &[
            "system",
            "PEs",
            "model q/PA+J",
            "random sim",
            "greedy sim",
            "ideal q/PA_p",
        ],
    );
    for (b, c, l, q, trials) in [
        (4u64, 2u64, 2u32, 8u64, 8u32),
        (4, 2, 2, 16, 8),
        (16, 4, 2, 16, 4), // the MasPar shape
    ] {
        let model = RaEdnModel::new(b, c, l, q).expect("valid parameters");
        let timing = model.expected_permutation_cycles();
        let mut random_system =
            RaEdnSystem::new(b, c, l, q, ArbiterKind::Random, 0xAB1E).expect("valid parameters");
        let mut greedy_system =
            RaEdnSystem::new(b, c, l, q, ArbiterKind::Random, 0xAB1E).expect("valid parameters");
        let (t_random, se_random) =
            random_system.measure_mean_cycles_scheduled(trials, Schedule::Random);
        let (t_greedy, se_greedy) =
            greedy_system.measure_mean_cycles_scheduled(trials, Schedule::GreedyDistinct);
        let ideal = q as f64 / permutation_pa(model.params(), 1.0);
        table.row(vec![
            model.to_string(),
            model.processors().to_string(),
            fmt_f(timing.total_cycles, 2),
            format!("{:.2} +- {:.2}", t_random, 1.96 * se_random),
            format!("{:.2} +- {:.2}", t_greedy, 1.96 * se_greedy),
            fmt_f(ideal, 2),
        ]);
    }
    table.print();
    println!("Reading: the greedy schedule removes output contention (the crossbar-");
    println!("stage losses) and recovers a large share of the gap between the random");
    println!("schedule and the conflict-free ideal, at O(p) bookkeeping per cycle —");
    println!("the cheap alternative the paper's reference [31] motivates.");
}
