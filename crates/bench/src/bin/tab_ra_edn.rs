//! TAB-RAEDN — Section 5.1's worked example: expected time to route a
//! random permutation on the MasPar-shaped `RA-EDN(16,4,2,16)`.
//!
//! The paper computes `PA(1) = .544`, a tail of `J = 5` cycles, and an
//! expected completion time of `16/.544 + 5 = 34.41` network cycles, and
//! notes the 16K-PE MasPar MP-1 router is logically equivalent to this
//! system. This binary prints the analytic decomposition and measures the
//! real completion time by simulation, for the paper's system and a sweep
//! of cluster sizes.
//!
//! Runs on the `edn_sweep` streaming harness: the per-trial permutation
//! runs and the cluster-size sweep (whose cost grows with `q`) execute
//! as pool tasks, with every table row streamed as it completes;
//! `--threads/--seeds/--cycles/--out/--shard` as everywhere (`--cycles`
//! sets the trials per measurement).

use edn_analytic::simd::RaEdnModel;
use edn_bench::{fmt_f, SweepArgs, Table};
use edn_sim::{map_seeds, ArbiterKind, RaEdnSystem, RunningStats};

fn main() {
    let args = SweepArgs::parse(
        "tab_ra_edn",
        "Section 5.1: RA-EDN random-permutation timing, model vs simulation.",
        10,
    );
    println!("Section 5.1: RA-EDN permutation timing (random schedule).\n");

    // The paper's worked example, decomposed. The analytic rows are
    // cheap and deterministic; they are precomputed so the emission plan
    // knows every row count, then streamed in plan order.
    let model = RaEdnModel::new(16, 4, 2, 16).expect("paper parameters are valid");
    let timing = model.expected_permutation_cycles();
    let anchor_rows: Vec<Vec<String>> = vec![
        vec!["ports p".into(), "1024".into(), model.ports().to_string()],
        vec![
            "processors".into(),
            "16384".into(),
            model.processors().to_string(),
        ],
        vec![
            "PA(1)".into(),
            "0.544".into(),
            fmt_f(timing.pa_full_load, 4),
        ],
        vec!["tail J".into(), "5".into(), timing.tail_cycles.to_string()],
        vec![
            "E[cycles] = q/PA(1) + J".into(),
            "34.41".into(),
            fmt_f(timing.total_cycles, 2),
        ],
    ];
    let tail_rows: Vec<Vec<String>> = timing
        .tail_rates
        .iter()
        .enumerate()
        .map(|(j, &rate)| {
            vec![
                (j + 1).to_string(),
                format!("{rate:.6}"),
                format!("{:.3}", rate * model.ports() as f64),
            ]
        })
        .collect();

    let mut anchor = Table::new(
        "TAB-RAEDN a: the paper's worked example RA-EDN(16,4,2,16)",
        &["quantity", "paper", "this reproduction"],
    );
    let mut tail = Table::new(
        "TAB-RAEDN b: tail recursion r_{j+1} = (1 - PA(r_j)) r_j",
        &["j", "r_j", "r_j * p"],
    );
    let mut sweep = Table::new(
        "TAB-RAEDN c: cluster-size sweep on EDN(64,16,4,2)",
        &[
            "q",
            "processors",
            "model E[cycles]",
            "simulated mean",
            "sim CI95 +-",
        ],
    );
    let cluster_sizes = [4u64, 16, 64];
    let mut emit = args.plan_emit(&[
        (&anchor, anchor_rows.len()),
        (&tail, tail_rows.len()),
        (&sweep, cluster_sizes.len()),
    ]);

    emit.table_rows(&mut anchor, anchor_rows);
    anchor.print();
    emit.table_rows(&mut tail, tail_rows);
    tail.print();

    // Simulated completion time (the hardware truth the model predicts):
    // one independent 16K-message permutation run per seed, on the pool.
    // Stdout narration only — the artifact carries the tables — so shard
    // runs skip it: it is the binary's heaviest computation and repeating
    // it in every shard process would swallow the scale-out win.
    if emit.is_full() {
        let trials = args.seed_list(0xA11CE);
        let cycle_counts = map_seeds(&trials, |seed| {
            let mut sim = RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, seed)
                .expect("paper parameters are valid");
            sim.route_random_permutation().cycles
        });
        let mut stats = RunningStats::new();
        let mut worst = 0u32;
        for &cycles in &cycle_counts {
            stats.push(cycles as f64);
            worst = worst.max(cycles);
        }
        println!(
            "simulated completion over {} random permutations: {:.2} +- {:.2} cycles (max {worst})",
            trials.len(),
            stats.mean(),
            stats.ci95_half_width()
        );
        println!("analytic expectation: {:.2} cycles\n", timing.total_cycles);
    }

    // Sweep of cluster sizes at the paper's network shape: one pool task
    // per q (the q=64 run costs ~16x the q=4 run — the stealing case).
    let sweep_trials = args.cycles_or(5);
    emit.run_rows(
        &mut sweep,
        || (),
        |(), row| {
            let q = cluster_sizes[row];
            let model = RaEdnModel::new(16, 4, 2, q).expect("valid parameters");
            let timing = model.expected_permutation_cycles();
            let mut system = RaEdnSystem::new(16, 4, 2, q, ArbiterKind::Random, 0xBEE + q)
                .expect("valid parameters");
            let (mean, se) = system.measure_mean_cycles(sweep_trials);
            vec![
                q.to_string(),
                model.processors().to_string(),
                fmt_f(timing.total_cycles, 2),
                fmt_f(mean, 2),
                fmt_f(1.96 * se, 2),
            ]
        },
    );
    sweep.print();
    println!("Shape check (paper): time scales as q/PA(1) with a small additive tail;");
    println!("the MasPar MP-1's router routes a 16K-PE permutation in ~34 cycles.");
    emit.finish();
}
