//! TAB-NUTS — (extension) Non-Uniform Traffic Spots.
//!
//! The introduction motivates EDN multipath as a way "to reduce conflicts
//! or Non Uniform Traffic Spots (NUTS)" (Lang & Kurisaki). This
//! experiment quantifies the *collateral damage* a hot spot inflicts on
//! unrelated ("cold") traffic: per cycle it draws one workload in which a
//! fraction `h` of sources aim at a single hot output, routes it twice —
//! once as-is and once with the hot messages removed (the control, same
//! cold messages and same arbitration seed) — and reports how much cold
//! acceptance the hot overlay destroys on each fabric.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per
//! hot-fraction row (measuring both fabrics on per-worker cached
//! engines), rows streamed as they complete;
//! `--threads/--seeds/--cycles/--out/--shard` as everywhere.

use edn_bench::{fmt_f, SweepArgs, SweepWorker};
use edn_core::{
    EdnParams, RandomArbiter, RouteRequest, RoutingEngine, RunMetrics, StageProbe, TraceFilter,
    TraceProbe,
};
use edn_sweep::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Damage {
    cold_with_hot: f64,
    cold_alone: f64,
}

impl Damage {
    fn collateral(&self) -> f64 {
        self.cold_alone - self.cold_with_hot
    }
}

/// One traced fabric's flight-recorder haul for a row: the StageProbe
/// aggregate and the TraceProbe event ring, carried out of the pool as
/// row aux data and recorded into the sidecars after the sweep.
struct Traced {
    label: String,
    metrics: RunMetrics,
    probe: TraceProbe,
}

fn measure(engine: &mut RoutingEngine, hot_fraction: f64, cycles: u32, seed: u64) -> Damage {
    let params = *engine.params();
    let hot_output = params.outputs() / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut with_hot_offered = 0u64;
    let mut with_hot_delivered = 0u64;
    let mut alone_offered = 0u64;
    let mut alone_delivered = 0u64;
    let mut full = Vec::with_capacity(params.inputs() as usize);
    let mut cold_only = Vec::with_capacity(params.inputs() as usize);
    for cycle in 0..cycles {
        // One draw, two routings (same arbitration seed for a fair pair).
        full.clear();
        cold_only.clear();
        for source in 0..params.inputs() {
            if rng.gen_bool(hot_fraction) {
                full.push(RouteRequest::new(source, hot_output));
            } else {
                let mut tag = rng.gen_range(0..params.outputs() - 1);
                if tag >= hot_output {
                    tag += 1; // cold traffic avoids the hot output entirely
                }
                full.push(RouteRequest::new(source, tag));
                cold_only.push(RouteRequest::new(source, tag));
            }
        }
        let arbiter_seed = seed ^ (cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(arbiter_seed));
        let outcome = engine.route(&full, &mut arbiter);
        with_hot_offered += cold_only.len() as u64;
        with_hot_delivered += outcome
            .delivered()
            .iter()
            .filter(|&&(_, out)| out != hot_output)
            .count() as u64;

        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(arbiter_seed));
        let control = engine.route(&cold_only, &mut arbiter);
        alone_offered += control.offered() as u64;
        alone_delivered += control.delivered_count() as u64;
    }
    Damage {
        cold_with_hot: with_hot_delivered as f64 / with_hot_offered as f64,
        cold_alone: alone_delivered as f64 / alone_offered as f64,
    }
}

/// As [`measure`], with the hot-overlay routing observed by a tee of
/// [`StageProbe`] (aggregates, for the metrics sidecar) and
/// [`TraceProbe`] (events, for the trace sidecar). Outcomes are
/// bit-identical to the unprobed [`measure`] — the probed engine entry
/// is property-asserted against the plain one — so a traced run's
/// artifact never differs from an untraced run's. The control routing
/// stays unprobed: the sidecars describe the hot-spot pass only.
fn measure_traced(
    engine: &mut RoutingEngine,
    hot_fraction: f64,
    cycles: u32,
    seed: u64,
    filter: TraceFilter,
) -> (Damage, RunMetrics, TraceProbe) {
    let params = *engine.params();
    let hot_output = params.outputs() / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut with_hot_offered = 0u64;
    let mut with_hot_delivered = 0u64;
    let mut alone_offered = 0u64;
    let mut alone_delivered = 0u64;
    let mut full = Vec::with_capacity(params.inputs() as usize);
    let mut cold_only = Vec::with_capacity(params.inputs() as usize);
    let mut stage_probe = StageProbe::new(&params);
    // Ring sized for the worst case (every request injected, hopping
    // every stage, and delivered or blocked each cycle), so an
    // unfiltered trace records every event with zero drops and the
    // trace reconciles exactly with the StageProbe aggregates.
    let capacity = (cycles as usize)
        .saturating_mul(params.inputs() as usize)
        .saturating_mul(params.l() as usize + 3)
        .max(1024);
    let mut trace_probe = TraceProbe::new(capacity, filter);
    for cycle in 0..cycles {
        full.clear();
        cold_only.clear();
        for source in 0..params.inputs() {
            if rng.gen_bool(hot_fraction) {
                full.push(RouteRequest::new(source, hot_output));
            } else {
                let mut tag = rng.gen_range(0..params.outputs() - 1);
                if tag >= hot_output {
                    tag += 1;
                }
                full.push(RouteRequest::new(source, tag));
                cold_only.push(RouteRequest::new(source, tag));
            }
        }
        let arbiter_seed = seed ^ (cycle as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(arbiter_seed));
        let outcome = engine.route_probed(
            &full,
            &mut arbiter,
            &mut (&mut stage_probe, &mut trace_probe),
        );
        with_hot_offered += cold_only.len() as u64;
        with_hot_delivered += outcome
            .delivered()
            .iter()
            .filter(|&&(_, out)| out != hot_output)
            .count() as u64;

        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(arbiter_seed));
        let control = engine.route(&cold_only, &mut arbiter);
        alone_offered += control.offered() as u64;
        alone_delivered += control.delivered_count() as u64;
    }
    let damage = Damage {
        cold_with_hot: with_hot_delivered as f64 / with_hot_offered as f64,
        cold_alone: alone_delivered as f64 / alone_offered as f64,
    };
    (damage, stage_probe.snapshot(), trace_probe)
}

fn main() {
    let args = SweepArgs::parse(
        "tab_nuts",
        "TAB-NUTS: collateral damage of a hot spot on cold traffic, 256 ports, r = 1.",
        1,
    );
    let cycles = args.cycles_or(80);
    println!("TAB-NUTS: collateral damage of a hot spot on cold traffic, 256 ports, r = 1.\n");
    let edn4 = EdnParams::new(16, 4, 4, 3).expect("valid"); // c = 4
    let delta = EdnParams::new(4, 4, 1, 4).expect("valid"); // c = 1
    assert_eq!(edn4.inputs(), delta.inputs());

    let mut table = Table::new(
        "TAB-NUTS: cold acceptance with vs without the hot overlay",
        &[
            "hot fraction",
            "EDN c=4 cold|hot",
            "EDN c=4 cold alone",
            "EDN damage",
            "delta cold|hot",
            "delta cold alone",
            "delta damage",
        ],
    );
    let hot_fractions = [0.05, 0.10, 0.20, 0.40];
    // One pool task per hot-fraction row, measuring both fabrics;
    // workers cache one wired engine per fabric across all their tasks.
    let mut emit = args.plan_emit(&[(&table, hot_fractions.len())]);
    let trace_filter = emit.trace_filter();
    let damages = emit.run_table(
        &mut table,
        SweepWorker::new,
        |worker, row| {
            let hot = hot_fractions[row];
            let seed = 500 + row as u64;
            // Under --trace the hot-overlay routing is observed by a
            // StageProbe + TraceProbe tee; outcomes (and therefore the
            // artifact) are bit-identical either way.
            let (a, d, traced) = match trace_filter {
                Some(filter) => {
                    let (a, a_metrics, a_probe) =
                        measure_traced(worker.engine(&edn4), hot, cycles, seed, filter);
                    let (d, d_metrics, d_probe) =
                        measure_traced(worker.engine(&delta), hot, cycles, seed, filter);
                    let traced = vec![
                        Traced {
                            label: format!("TAB-NUTS {edn4} h={hot:.2} hot overlay"),
                            metrics: a_metrics,
                            probe: a_probe,
                        },
                        Traced {
                            label: format!("TAB-NUTS {delta} h={hot:.2} hot overlay"),
                            metrics: d_metrics,
                            probe: d_probe,
                        },
                    ];
                    (a, d, traced)
                }
                None => (
                    measure(worker.engine(&edn4), hot, cycles, seed),
                    measure(worker.engine(&delta), hot, cycles, seed),
                    Vec::new(),
                ),
            };
            let cells = vec![
                fmt_f(hot, 2),
                fmt_f(a.cold_with_hot, 4),
                fmt_f(a.cold_alone, 4),
                fmt_f(a.collateral(), 4),
                fmt_f(d.cold_with_hot, 4),
                fmt_f(d.cold_alone, 4),
                fmt_f(d.collateral(), 4),
            ];
            let relative = (
                hot,
                a.collateral() / a.cold_alone,
                d.collateral() / d.cold_alone,
            );
            (cells, (relative, traced))
        },
        // Cached replay: the relative damages are ratios of row columns.
        // Replayed rows were never routed, so they carry no trace.
        |cells, _| {
            let f = |cell: &str| cell.parse::<f64>().expect("cached numeric cell");
            (
                (
                    f(&cells[0]),
                    f(&cells[3]) / f(&cells[2]),
                    f(&cells[6]) / f(&cells[5]),
                ),
                Vec::new(),
            )
        },
    );
    for (_, traced) in &damages {
        for trace in traced {
            emit.record_run_metrics(&trace.label, &trace.metrics);
            emit.record_trace(&trace.label, &trace.probe);
        }
    }
    table.print();
    println!("Reading: 'damage' is the cold acceptance the hot overlay destroys (same");
    println!("cold messages, same arbitration seed). Two findings:");
    println!("  1. In an unbuffered circuit-switched fabric the *relative* collateral");
    println!("     damage is modest and comparable across fabrics — excess hot");
    println!("     messages die in the first stages instead of saturating a tree of");
    println!("     buffers (NUTS tree saturation is a buffered-network phenomenon).");
    println!("  2. The EDN's multipath advantage shows in absolute terms: under every");
    println!("     hot-spot intensity its cold traffic still beats the delta's by the");
    println!("     full Figure-7 margin.");
    for ((hot, edn_damage, delta_damage), _) in damages {
        println!(
            "  h = {hot:.2}: relative damage EDN {:.1}% vs delta {:.1}% of cold baseline",
            100.0 * edn_damage,
            100.0 * delta_damage
        );
    }
    emit.finish();
}
