//! TAB-SIMVAL — (extension) end-to-end validation of the analytic models
//! against Monte-Carlo simulation of the wired fabric.
//!
//! The paper's evaluation is entirely analytical; its credibility rests on
//! the Theorem-3 uniformity argument and the per-stage independence
//! approximation. This binary quantifies that approximation: for a sweep
//! of networks and request rates it prints Eq. 4's `PA(r)` next to the
//! simulated acceptance (with confidence intervals), and likewise for the
//! Section 4 resubmission fixed point.

use edn_analytic::mimd::resubmission_fixed_point;
use edn_analytic::pa::probability_of_acceptance;
use edn_bench::{fmt_f, Table};
use edn_core::EdnParams;
use edn_sim::{estimate_pa, map_seeds, ArbiterKind, MimdSystem, ResubmitPolicy};

fn main() {
    println!("TAB-SIMVAL: analytic models vs cycle-level simulation.\n");

    // --- Eq. 4 PA(r) vs simulation. ---
    let mut table = Table::new(
        "TAB-SIMVAL a: PA(r), model vs Monte Carlo (random arbitration)",
        &[
            "network",
            "N",
            "r",
            "model",
            "simulated",
            "CI95 +-",
            "|diff|",
        ],
    );
    let networks = [
        EdnParams::new(16, 4, 4, 2).expect("valid"),
        EdnParams::new(16, 4, 4, 3).expect("valid"),
        EdnParams::new(8, 2, 4, 4).expect("valid"),
        EdnParams::new(8, 8, 1, 3).expect("valid"),
        EdnParams::new(64, 16, 4, 2).expect("valid"),
    ];
    for params in &networks {
        for rate in [0.25, 0.5, 1.0] {
            let model = probability_of_acceptance(params, rate);
            // Average over independent seeds in parallel.
            let seeds: Vec<u64> = (0..4).map(|i| 1000 + i).collect();
            let estimates = map_seeds(&seeds, |seed| {
                estimate_pa(params, rate, ArbiterKind::Random, 60, seed)
            });
            let mean = estimates.iter().map(|e| e.mean).sum::<f64>() / estimates.len() as f64;
            let se = estimates.iter().map(|e| e.std_error).sum::<f64>()
                / (estimates.len() as f64).powf(1.5);
            table.row(vec![
                params.to_string(),
                params.inputs().to_string(),
                fmt_f(rate, 2),
                fmt_f(model, 4),
                fmt_f(mean, 4),
                fmt_f(1.96 * se, 4),
                fmt_f((model - mean).abs(), 4),
            ]);
        }
    }
    table.print();

    // --- Section 4 fixed point vs MIMD simulation. ---
    let mut mimd = Table::new(
        "TAB-SIMVAL b: MIMD resubmission, model vs simulation (redraw policy)",
        &[
            "network",
            "r",
            "PA' model",
            "PA' sim",
            "qW model",
            "qW sim",
            "r' model",
            "r' sim",
        ],
    );
    for (params, rate) in [
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 0.5),
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 1.0),
        (EdnParams::new(4, 2, 2, 5).expect("valid"), 0.5),
    ] {
        let model = resubmission_fixed_point(&params, rate, 1e-12, 100_000);
        let mut system = MimdSystem::new(
            params,
            rate,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            77,
        )
        .expect("valid rate");
        let report = system.run(300, 700);
        mimd.row(vec![
            params.to_string(),
            fmt_f(rate, 2),
            fmt_f(model.pa_prime, 4),
            fmt_f(report.acceptance, 4),
            fmt_f(model.q_waiting, 4),
            fmt_f(report.waiting_fraction, 4),
            fmt_f(model.effective_rate, 4),
            fmt_f(report.effective_rate, 4),
        ]);
    }
    mimd.print();

    // --- The independence shortcut: redraw vs same-destination retries. ---
    let mut policy = Table::new(
        "TAB-SIMVAL c: resubmission destination policy (simulation only)",
        &[
            "network",
            "r",
            "PA' redraw",
            "PA' same-dest",
            "qW redraw",
            "qW same-dest",
        ],
    );
    for (params, rate) in [
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 0.5),
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 1.0),
    ] {
        let mut redraw =
            MimdSystem::new(params, rate, ArbiterKind::Random, ResubmitPolicy::Redraw, 5)
                .expect("valid rate");
        let mut same = MimdSystem::new(
            params,
            rate,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            5,
        )
        .expect("valid rate");
        let a = redraw.run(300, 700);
        let b = same.run(300, 700);
        policy.row(vec![
            params.to_string(),
            fmt_f(rate, 2),
            fmt_f(a.acceptance, 4),
            fmt_f(b.acceptance, 4),
            fmt_f(a.waiting_fraction, 4),
            fmt_f(b.waiting_fraction, 4),
        ]);
    }
    policy.print();
    println!("Reading: Eq. 4 tracks simulation within a few hundredths across the sweep;");
    println!("the paper's re-uniformization assumption (redraw) is mildly optimistic");
    println!("compared to physically faithful same-destination retries.");
}
