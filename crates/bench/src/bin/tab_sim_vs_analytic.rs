//! TAB-SIMVAL — (extension) end-to-end validation of the analytic models
//! against Monte-Carlo simulation of the wired fabric.
//!
//! The paper's evaluation is entirely analytical; its credibility rests on
//! the Theorem-3 uniformity argument and the per-stage independence
//! approximation. This binary quantifies that approximation: for a sweep
//! of networks and request rates it prints Eq. 4's `PA(r)` next to the
//! simulated acceptance (with confidence intervals), and likewise for the
//! Section 4 resubmission fixed point.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per table
//! row — a (network, rate) cell folds its seed axis inside the task —
//! with every row streamed to the artifact as its simulations complete;
//! `--threads/--seeds/--cycles/--out/--shard` as everywhere.

use edn_analytic::mimd::resubmission_fixed_point;
use edn_analytic::pa::probability_of_acceptance;
use edn_bench::{fmt_f, SweepArgs, Table};
use edn_core::EdnParams;
use edn_sim::{estimate_pa_seeds, ArbiterKind, MimdSystem, ResubmitPolicy};

fn main() {
    let args = SweepArgs::parse(
        "tab_sim_vs_analytic",
        "TAB-SIMVAL: analytic models vs cycle-level Monte-Carlo simulation.",
        4,
    );
    let cycles = args.cycles_or(60);
    println!("TAB-SIMVAL: analytic models vs cycle-level simulation.\n");

    // --- Eq. 4 PA(r) vs simulation: the (network, rate) grid, one row
    // per cell, the seed axis folded inside the row's task. ---
    let mut table = Table::new(
        "TAB-SIMVAL a: PA(r), model vs Monte Carlo (random arbitration)",
        &[
            "network",
            "N",
            "r",
            "model",
            "simulated",
            "CI95 +-",
            "|diff|",
        ],
    );
    let networks = [
        EdnParams::new(16, 4, 4, 2).expect("valid"),
        EdnParams::new(16, 4, 4, 3).expect("valid"),
        EdnParams::new(8, 2, 4, 4).expect("valid"),
        EdnParams::new(8, 8, 1, 3).expect("valid"),
        EdnParams::new(64, 16, 4, 2).expect("valid"),
    ];
    let rates = [0.25, 0.5, 1.0];
    let seeds = args.seed_list(1000);

    let mut mimd = Table::new(
        "TAB-SIMVAL b: MIMD resubmission, model vs simulation (redraw policy)",
        &[
            "network",
            "r",
            "PA' model",
            "PA' sim",
            "qW model",
            "qW sim",
            "r' model",
            "r' sim",
        ],
    );
    let mimd_points = [
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 0.5),
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 1.0),
        (EdnParams::new(4, 2, 2, 5).expect("valid"), 0.5),
    ];

    let mut policy = Table::new(
        "TAB-SIMVAL c: resubmission destination policy (simulation only)",
        &[
            "network",
            "r",
            "PA' redraw",
            "PA' same-dest",
            "qW redraw",
            "qW same-dest",
        ],
    );
    let policy_points = [
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 0.5),
        (EdnParams::new(16, 4, 4, 3).expect("valid"), 1.0),
    ];

    let mut emit = args.plan_emit(&[
        (&table, networks.len() * rates.len()),
        (&mimd, mimd_points.len()),
        (&policy, policy_points.len()),
    ]);

    emit.run_rows(
        &mut table,
        || (),
        |(), row| {
            let params = networks[row / rates.len()];
            let rate = rates[row % rates.len()];
            let model = probability_of_acceptance(&params, rate);
            // Fold the per-seed estimates of this (network, rate) cell.
            // The whole seed axis rides the lane engine — 64 replicas per
            // traversal, each bit-identical to its scalar estimate_pa.
            let estimates = estimate_pa_seeds(&params, rate, ArbiterKind::Random, cycles, &seeds);
            let mean = estimates.iter().map(|e| e.mean).sum::<f64>() / estimates.len() as f64;
            let se = estimates.iter().map(|e| e.std_error).sum::<f64>()
                / (estimates.len() as f64).powf(1.5);
            vec![
                params.to_string(),
                params.inputs().to_string(),
                fmt_f(rate, 2),
                fmt_f(model, 4),
                fmt_f(mean, 4),
                fmt_f(1.96 * se, 4),
                fmt_f((model - mean).abs(), 4),
            ]
        },
    );
    table.print();

    // --- Section 4 fixed point vs MIMD simulation, one pool task per
    // (network, rate) row. ---
    emit.run_rows(
        &mut mimd,
        || (),
        |(), row| {
            let (params, rate) = mimd_points[row];
            let model = resubmission_fixed_point(&params, rate, 1e-12, 100_000);
            let mut system = MimdSystem::new(
                params,
                rate,
                ArbiterKind::Random,
                ResubmitPolicy::Redraw,
                77,
            )
            .expect("valid rate");
            let report = system.run(300, 700);
            vec![
                params.to_string(),
                fmt_f(rate, 2),
                fmt_f(model.pa_prime, 4),
                fmt_f(report.acceptance, 4),
                fmt_f(model.q_waiting, 4),
                fmt_f(report.waiting_fraction, 4),
                fmt_f(model.effective_rate, 4),
                fmt_f(report.effective_rate, 4),
            ]
        },
    );
    mimd.print();

    // --- The independence shortcut: redraw vs same-destination retries,
    // one pool task per (network, rate) row measuring both policies. ---
    emit.run_rows(
        &mut policy,
        || (),
        |(), row| {
            let (params, rate) = policy_points[row];
            let run = |resubmit| {
                let mut system = MimdSystem::new(params, rate, ArbiterKind::Random, resubmit, 5)
                    .expect("valid rate");
                system.run(300, 700)
            };
            let a = run(ResubmitPolicy::Redraw);
            let b = run(ResubmitPolicy::SameDestination);
            vec![
                params.to_string(),
                fmt_f(rate, 2),
                fmt_f(a.acceptance, 4),
                fmt_f(b.acceptance, 4),
                fmt_f(a.waiting_fraction, 4),
                fmt_f(b.waiting_fraction, 4),
            ]
        },
    );
    policy.print();
    println!("Reading: Eq. 4 tracks simulation within a few hundredths across the sweep;");
    println!("the paper's re-uniformization assumption (redraw) is mildly optimistic");
    println!("compared to physically faithful same-destination retries.");
    emit.finish();
}
