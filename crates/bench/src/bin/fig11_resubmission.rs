//! FIG11 — the paper's Figure 11: the effect of resubmitting rejected
//! requests on `PA` in MIMD systems.
//!
//! Series (at request rate r = 0.5, sizes to 10^6): `EDN(16,4,4,*)` and
//! `EDN(4,2,2,*)`, each with rejected requests *ignored* (plain Eq. 4
//! `PA`) and *resubmitted* (the Section 4 fixed point `PA'`). The paper's
//! shape: resubmission costs a visible constant factor that grows with
//! network depth, and the smaller-switch family suffers more.
//!
//! Sizes up to 4096 ports additionally carry a **simulated** `PA'`
//! column: a session-backed [`MimdSystem`] run (the whole measurement is
//! one resident `RouteSession` call on the engine), validating the fixed
//! point against the wired fabric along the figure's own axis.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per table
//! row (a network size: both families' fixed points plus the MIMD runs)
//! — the deep fixed-point iterations and the larger MIMD runs cost far
//! more than the shallow ones, exactly the imbalance stealing absorbs —
//! with every row streamed to the artifact as it completes;
//! `--threads/--cycles/--out/--shard` as everywhere (`--cycles` sets the
//! measured simulation cycles).

use edn_analytic::mimd::resubmission_fixed_point;
use edn_analytic::pa::probability_of_acceptance;
use edn_bench::{family_sizes, fmt_opt, Family, SweepArgs, Table};
use edn_core::EdnParams;
use edn_sim::{ArbiterKind, MimdSystem, ResubmitPolicy};

/// Largest network simulated for the measured `PA'` column (the analytic
/// curves continue to 10^6 ports).
const SIM_MAX_PORTS: u64 = 4096;

/// One family's three columns at one size.
fn family_cells(params: Option<EdnParams>, rate: f64, sim_cycles: u32) -> [Option<f64>; 3] {
    let Some(params) = params else {
        return [None, None, None];
    };
    let ignored = probability_of_acceptance(&params, rate);
    let steady = resubmission_fixed_point(&params, rate, 1e-12, 100_000);
    let simulated = (params.inputs() <= SIM_MAX_PORTS).then(|| {
        let mut system = MimdSystem::new(
            params,
            rate,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            0xF160 ^ params.inputs(),
        )
        .expect("rate 0.5 is valid");
        system.run(sim_cycles / 2, sim_cycles).acceptance
    });
    [Some(ignored), Some(steady.pa_prime), simulated]
}

fn main() {
    let args = SweepArgs::parse(
        "fig11_resubmission",
        "Figure 11: acceptance with ignored vs resubmitted rejects (Section 4 fixed point).",
        1,
    );
    const RATE: f64 = 0.5;
    const MAX_PORTS: u64 = 1 << 20;
    let families = [Family { io: 16, b: 4 }, Family { io: 4, b: 2 }];
    let sizes = family_sizes(&families, MAX_PORTS);
    let sim_cycles = args.cycles_or(300);

    println!("Figure 11: PA(0.5) vs PA'(0.5), ignored vs resubmitted rejects.\n");

    let mut table = Table::new(
        "FIG11: acceptance at r = 0.5 (sim PA' measured up to N = 4096)",
        &[
            "N",
            "EDN(16,4,4,*) ignored",
            "EDN(16,4,4,*) resubmitted",
            "EDN(16,4,4,*) sim PA'",
            "EDN(4,2,2,*) ignored",
            "EDN(4,2,2,*) resubmitted",
            "EDN(4,2,2,*) sim PA'",
        ],
    );
    let mut emit = args.plan_emit(&[(&table, sizes.len())]);
    let row_values = emit.run_table(
        &mut table,
        || (),
        |(), row| {
            let n = sizes[row];
            let [i0, r0, s0] = family_cells(families[0].member_at(n), RATE, sim_cycles);
            let [i1, r1, s1] = family_cells(families[1].member_at(n), RATE, sim_cycles);
            let cells = vec![
                n.to_string(),
                fmt_opt(i0, 4),
                fmt_opt(r0, 4),
                fmt_opt(s0, 4),
                fmt_opt(i1, 4),
                fmt_opt(r1, 4),
                fmt_opt(s1, 4),
            ];
            (cells, (n, [i0.zip(r0), i1.zip(r1)]))
        },
        // Cached replay: parse N and the per-family (ignored,
        // resubmitted) pairs back out of the row ("-" marks None).
        |cells, _| {
            let opt = |cell: &str| cell.parse::<f64>().ok();
            (
                cells[0].parse().expect("cached N"),
                [
                    opt(&cells[1]).zip(opt(&cells[2])),
                    opt(&cells[4]).zip(opt(&cells[5])),
                ],
            )
        },
    );
    table.print();

    // Shape checks from the figure (full runs only), read back from the
    // rows just computed — the deep fixed points are not re-evaluated.
    if emit.is_full() {
        let last = |family_index: usize| {
            row_values
                .iter()
                .rev()
                .find_map(|&(n, columns)| {
                    columns[family_index].map(|(ignored, resub)| (n, ignored, resub))
                })
                .expect("family is non-empty")
        };
        let (n0, ignored0, resub0) = last(0);
        let (n1, ignored1, resub1) = last(1);
        println!("At the largest sizes (N={n0} / N={n1}):");
        println!(
            "  EDN(16,4,4,*): ignored {ignored0:.3} vs resubmitted {resub0:.3} (drop {:.3})",
            ignored0 - resub0
        );
        println!(
            "  EDN(4,2,2,*):  ignored {ignored1:.3} vs resubmitted {resub1:.3} (drop {:.3})",
            ignored1 - resub1
        );
        println!("Shape check (paper): resubmitted curves sit below ignored curves, and the");
        println!("gap widens with network size.");
    }
    emit.finish();
}
