//! TAB-DILATED — (extension) the paper's Section 1 remark: capacity vs
//! dilation.
//!
//! "The number of wires between stages in a d-dilated network is d times
//! the number of wires of the equivalent stage of an EDN with the same
//! number of inputs, resulting in a much less space efficient network."
//!
//! This binary compares, at equal port count, the EDN(bc,b,c,l) against
//! the d-dilated radix-b delta network: acceptance at full load, wire
//! cost, crosspoint cost, and acceptance per kilowire.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per table
//! row (an EDN or its dilated counterpart at one stage count);
//! `--threads/--out/--shard` as everywhere.

use edn_analytic::pa::probability_of_acceptance;
use edn_analytic::DilatedDeltaModel;
use edn_bench::{fmt_f, SweepArgs, Table};
use edn_core::cost::{dilated_delta_crosspoints, dilated_delta_wires, wire_cost};
use edn_core::{cost::crosspoint_cost, EdnParams};

fn main() {
    let args = SweepArgs::parse(
        "tab_dilated",
        "Section 1 remark: EDN capacity vs link dilation at equal port count.",
        1,
    );
    println!("Section 1 remark: EDN capacity vs link dilation, at equal ports.\n");

    let mut table = Table::new(
        "TAB-DILATED: EDN(16,4,4,l) vs 4-dilated radix-4 delta, equal ports",
        &[
            "ports",
            "network",
            "PA(1)",
            "wires",
            "crosspoints",
            "PA per kilowire",
        ],
    );
    let levels = [2u32, 3, 4, 5];
    // Two rows per stage count (the EDN, then its dilated counterpart),
    // each an independent pool task.
    let mut emit = args.plan_emit(&[(&table, levels.len() * 2)]);
    emit.run_rows(
        &mut table,
        || (),
        |(), row| {
            let l = levels[row / 2];
            let edn = EdnParams::new(16, 4, 4, l).expect("valid EDN");
            let ports = edn.inputs();
            // A radix-4 delta on `ports` endpoints needs log4(ports) stages.
            let dilated_l = ports.trailing_zeros() / 2;
            let dilated = DilatedDeltaModel::new(4, 4, dilated_l).expect("valid dilated");
            assert_eq!(dilated.ports(), ports);

            if row % 2 == 0 {
                let pa_edn = probability_of_acceptance(&edn, 1.0);
                let w_edn = wire_cost(&edn);
                vec![
                    ports.to_string(),
                    edn.to_string(),
                    fmt_f(pa_edn, 4),
                    w_edn.to_string(),
                    crosspoint_cost(&edn).to_string(),
                    fmt_f(pa_edn / (w_edn as f64 / 1000.0), 2),
                ]
            } else {
                let pa_dil = dilated.probability_of_acceptance(1.0);
                let w_dil = dilated_delta_wires(4, 4, dilated_l);
                vec![
                    ports.to_string(),
                    dilated.to_string(),
                    fmt_f(pa_dil, 4),
                    w_dil.to_string(),
                    dilated_delta_crosspoints(4, 4, dilated_l).to_string(),
                    fmt_f(pa_dil / (w_dil as f64 / 1000.0), 2),
                ]
            }
        },
    );
    table.print();
    println!("Shape check (paper, Section 1): at equal ports the dilated network's");
    println!("interstage planes carry ~d times the EDN's wires, so the EDN wins on");
    println!("acceptance per wire even where raw acceptance is comparable.");
    emit.finish();
}
