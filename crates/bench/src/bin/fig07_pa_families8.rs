//! FIG7 — the paper's Figure 7: `PA(1)` vs. network size for every square
//! EDN family built from 8-input/8-output hyperbars, against the full
//! crossbar reference.
//!
//! Series: full crossbar, `EDN(8,2,4,*)`, `EDN(8,4,2,*)`, `EDN(8,8,1,*)`
//! (the delta-network family), sizes up to 10^6 inputs. The paper's
//! qualitative claims: the delta family is worst, performance improves
//! with capacity, and the capacity-4 family tracks the crossbar closely.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per table
//! row (a network size, evaluating the Eq. 4 product for every family),
//! each row emitted as it completes;
//! `--threads/--out/--shard` as everywhere.

use edn_analytic::pa::{crossbar_pa, probability_of_acceptance};
use edn_bench::{family_sizes, figure7_families, fmt_f, fmt_opt, SweepArgs, Table};

fn main() {
    let args = SweepArgs::parse(
        "fig07_pa_families8",
        "Figure 7: analytic PA(1) vs network size for the 8-I/O hyperbar families.",
        1,
    );
    const MAX_PORTS: u64 = 1 << 20; // the paper plots to 10^6
    let families = figure7_families();
    let sizes = family_sizes(&families, MAX_PORTS);

    println!("Figure 7: PA(1) vs number of inputs, 8-I/O hyperbar families.\n");

    let mut table = Table::new(
        "FIG7: PA(1) (analytic, Eq. 4)",
        &[
            "N",
            "crossbar",
            "EDN(8,2,4,*)",
            "EDN(8,4,2,*)",
            "EDN(8,8,1,*)",
        ],
    );
    let mut emit = args.plan_emit(&[(&table, sizes.len())]);
    // Every size is one pool task evaluating all families: Eq. 4 is a
    // per-stage product whose cost grows with l, so the large tail would
    // otherwise serialize.
    emit.run_rows(
        &mut table,
        || (),
        |(), row| {
            let n = sizes[row];
            let pa = |family_index: usize| -> Option<f64> {
                families[family_index]
                    .member_at(n)
                    .map(|params| probability_of_acceptance(&params, 1.0))
            };
            vec![
                n.to_string(),
                fmt_f(crossbar_pa(n, 1.0), 4),
                fmt_opt(pa(0), 4),
                fmt_opt(pa(1), 4),
                fmt_opt(pa(2), 4),
            ]
        },
    );
    table.print();

    // The paper's qualitative checks (full runs only: a shard holds just
    // its slice of the size axis).
    if emit.is_full() {
        let at = |family_index: usize, n: u64| {
            families[family_index]
                .member_at(n)
                .map(|params| probability_of_acceptance(&params, 1.0))
        };
        let big = 1 << 18;
        if let (Some(c4), Some(delta)) = (at(0, big), at(2, big)) {
            println!("At N = {big}: capacity-4 family PA = {c4:.3}, delta family PA = {delta:.3}.");
            println!(
                "Shape check (paper): delta worst, capacity helps, EDN(8,2,4,*) near crossbar"
            );
            println!(
                "crossbar at same size: {:.3} (gap to capacity-4 family: {:.3})",
                crossbar_pa(big, 1.0),
                crossbar_pa(big, 1.0) - c4
            );
        }
    }
    emit.finish();
}
