//! FIG7 — the paper's Figure 7: `PA(1)` vs. network size for every square
//! EDN family built from 8-input/8-output hyperbars, against the full
//! crossbar reference.
//!
//! Series: full crossbar, `EDN(8,2,4,*)`, `EDN(8,4,2,*)`, `EDN(8,8,1,*)`
//! (the delta-network family), sizes up to 10^6 inputs. The paper's
//! qualitative claims: the delta family is worst, performance improves
//! with capacity, and the capacity-4 family tracks the crossbar closely.
//!
//! Runs on the `edn_sweep` harness: one pool task per (family, size)
//! evaluation of the Eq. 4 product; `--threads/--out` as everywhere.

use edn_analytic::pa::{crossbar_pa, probability_of_acceptance};
use edn_bench::{evaluate_families, figure7_families, fmt_f, fmt_opt, SweepArgs, Table};

fn main() {
    let args = SweepArgs::parse(
        "fig07_pa_families8",
        "Figure 7: analytic PA(1) vs network size for the 8-I/O hyperbar families.",
        1,
    );
    const MAX_PORTS: u64 = 1 << 20; // the paper plots to 10^6
    let families = figure7_families();

    println!("Figure 7: PA(1) vs number of inputs, 8-I/O hyperbar families.\n");

    let mut table = Table::new(
        "FIG7: PA(1) (analytic, Eq. 4)",
        &[
            "N",
            "crossbar",
            "EDN(8,2,4,*)",
            "EDN(8,4,2,*)",
            "EDN(8,8,1,*)",
        ],
    );
    // Every (family, size) point is one pool task: Eq. 4 is a per-stage
    // product whose cost grows with l, so the large tail would otherwise
    // serialize.
    let series = evaluate_families(args.threads, &families, MAX_PORTS, |params| {
        probability_of_acceptance(params, 1.0)
    });
    // Union of sizes, ascending.
    let mut sizes: Vec<u64> = series.iter().flatten().map(|&(n, _)| n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &n in &sizes {
        let lookup = |idx: usize| -> Option<f64> {
            series[idx]
                .iter()
                .find(|&&(size, _)| size == n)
                .map(|&(_, pa)| pa)
        };
        table.row(vec![
            n.to_string(),
            fmt_f(crossbar_pa(n, 1.0), 4),
            fmt_opt(lookup(0), 4),
            fmt_opt(lookup(1), 4),
            fmt_opt(lookup(2), 4),
        ]);
    }
    table.print();

    // The paper's qualitative checks.
    let at = |idx: usize, n: u64| series[idx].iter().find(|&&(s, _)| s == n).map(|&(_, p)| p);
    let big = 1 << 18;
    if let (Some(c4), Some(delta)) = (at(0, big), at(2, 1 << 18)) {
        println!("At N = {big}: capacity-4 family PA = {c4:.3}, delta family PA = {delta:.3}.");
        println!("Shape check (paper): delta worst, capacity helps, EDN(8,2,4,*) near crossbar");
        println!(
            "crossbar at same size: {:.3} (gap to capacity-4 family: {:.3})",
            crossbar_pa(big, 1.0),
            crossbar_pa(big, 1.0) - c4
        );
    }
    args.emit(&[&table]);
}
