//! `edn_trace` — analyze flight-recorder sidecars, no re-simulation.
//!
//! ```text
//! edn_trace run.trace.jsonl                    # per-label event summary
//! edn_trace run.trace.jsonl --lifecycle 7      # source 7's packet lifecycles
//! edn_trace run.trace.jsonl --latency          # delivery percentiles (cycles)
//! edn_trace run.trace.jsonl --blocks           # block-site ranking
//! edn_trace run.trace.jsonl --diagram --svg plots/
//! edn_trace run.trace.jsonl --chrome trace.json    # chrome://tracing export
//! edn_trace run.trace.jsonl --reconcile run.metrics.jsonl
//! ```
//!
//! A `--trace` run writes every recorded [`TraceEvent`] into a
//! `*.trace.jsonl` sidecar. This tool reads one back (through
//! `edn_sweep::json`, dependency-free like everything here) and
//! reconstructs what the aggregate counters cannot show:
//!
//! * **lifecycles** — each packet's actual path, stage by granted wire,
//!   to its delivery, block site, or fault death;
//! * **utilization** — grants per stage and per exit wire;
//! * **blocks** — block sites ranked by contention (losing contenders);
//! * **latency** — delivery-latency percentiles in simulated cycles;
//! * **diagram** — a time-space diagram (stage activity over cycles),
//!   ASCII and, with `--svg DIR`, SVG;
//! * **chrome** — the whole trace as Chrome trace-event JSON, one
//!   process per label, one thread per source, microseconds = cycles;
//! * **reconcile** — per-stage event counts cross-checked against the
//!   same run's `StageProbe` aggregates in the metrics sidecar.
//!
//! [`TraceEvent`]: edn_core::TraceEvent

use edn_core::TraceEventKind;
use edn_sweep::json::{self, Value};
use edn_sweep::TRACE_SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

const USAGE: &str = "analyze a flight-recorder trace sidecar (no re-simulation)\n\n\
    Usage: edn_trace TRACE.trace.jsonl [OPTIONS]\n\n\
    Options:\n  \
    --label SUBSTR   analyze only labels containing SUBSTR\n  \
    --lifecycle [S]  print per-packet lifecycles (optionally: source S only)\n  \
    --limit N        max lifecycles printed per label (default 20)\n  \
    --utilization    per-stage / per-wire grant utilization\n  \
    --blocks         block sites ranked by losing contenders\n  \
    --latency        delivery-latency percentiles (p50/p90/p99/max, cycles)\n  \
    --diagram        ASCII time-space diagram (stage activity over cycles)\n  \
    --width N        diagram width in columns (default 64)\n  \
    --svg DIR        also write DIR/<label>.svg time-space diagrams\n  \
    --chrome PATH    export Chrome trace-event JSON (open in chrome://tracing\n                   \
    or ui.perfetto.dev)\n  \
    --reconcile PATH cross-check per-stage counts against the run's\n                   \
    *.metrics.jsonl routing records\n  \
    --help           print this message\n\n\
    With no analysis flag, prints the per-label event summary.";

struct Options {
    trace: PathBuf,
    label: Option<String>,
    lifecycle: bool,
    lifecycle_source: Option<u64>,
    limit: usize,
    utilization: bool,
    blocks: bool,
    latency: bool,
    diagram: bool,
    width: usize,
    svg: Option<PathBuf>,
    chrome: Option<PathBuf>,
    reconcile: Option<PathBuf>,
}

impl Options {
    /// `true` when no analysis flag was given, so the default summary
    /// renders.
    fn summary_only(&self) -> bool {
        !(self.lifecycle
            || self.utilization
            || self.blocks
            || self.latency
            || self.diagram
            || self.chrome.is_some()
            || self.reconcile.is_some())
    }
}

fn parse_options() -> Result<Option<Options>, String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut trace = None;
    let mut label = None;
    let mut lifecycle = false;
    let mut lifecycle_source = None;
    let mut limit = 20usize;
    let mut utilization = false;
    let mut blocks = false;
    let mut latency = false;
    let mut diagram = false;
    let mut width = 64usize;
    let mut svg = None;
    let mut chrome = None;
    let mut reconcile = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--label" => label = Some(value("--label")?),
            "--lifecycle" => {
                lifecycle = true;
                // The source is optional: the next token is consumed
                // only when it reads as a port number, so a following
                // path or flag is left for its own clause.
                if let Some(next) = args.peek() {
                    if let Ok(source) = next.parse::<u64>() {
                        lifecycle_source = Some(source);
                        args.next();
                    }
                }
            }
            "--limit" => {
                limit = value("--limit")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--limit expects an integer >= 1")?;
            }
            "--utilization" => utilization = true,
            "--blocks" => blocks = true,
            "--latency" => latency = true,
            "--diagram" => diagram = true,
            "--width" => {
                width = value("--width")?
                    .parse()
                    .ok()
                    .filter(|&w| w >= 8)
                    .ok_or("--width expects an integer >= 8")?;
            }
            "--svg" => svg = Some(PathBuf::from(value("--svg")?)),
            "--chrome" => chrome = Some(PathBuf::from(value("--chrome")?)),
            "--reconcile" => reconcile = Some(PathBuf::from(value("--reconcile")?)),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path if trace.is_none() => trace = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let trace = trace.ok_or("no trace sidecar given")?;
    Ok(Some(Options {
        trace,
        label,
        lifecycle,
        lifecycle_source,
        limit,
        utilization,
        blocks,
        latency,
        diagram,
        width,
        svg,
        chrome,
        reconcile,
    }))
}

/// One parsed event record (the sidecar's flat row form).
struct Event {
    cycle: u64,
    kind: TraceEventKind,
    source: u64,
    tag: u64,
    stage: u32,
    value: u64,
}

/// One label's event stream plus its summary-record totals.
struct LabelTrace {
    label: String,
    events: Vec<Event>,
    /// Matching events the recorder's ring could not hold (from the
    /// summary record); when nonzero, every count here is a lower bound.
    dropped: u64,
    /// Simulated cycles the recorder observed (from the summary record).
    cycles: u64,
}

/// The whole sidecar: header provenance plus per-label streams, labels
/// in first-appearance order.
struct TraceData {
    binary: String,
    filter: String,
    labels: Vec<LabelTrace>,
}

fn kind_of(name: &str) -> Option<TraceEventKind> {
    TraceEventKind::ALL.into_iter().find(|k| k.name() == name)
}

fn load(options: &Options) -> Result<TraceData, String> {
    let text = std::fs::read_to_string(&options.trace)
        .map_err(|error| format!("{}: {error}", options.trace.display()))?;
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or("trace sidecar is empty")?;
    let header = json::parse(header_line).map_err(|error| format!("header: {error}"))?;
    if header.get("kind").and_then(|v| v.as_str()) != Some("header") {
        return Err("first record is not the trace header".to_string());
    }
    let schema = header
        .get("edn_trace_schema")
        .and_then(|v| v.as_usize())
        .ok_or("header has no `edn_trace_schema`")?;
    if schema as u64 != TRACE_SCHEMA_VERSION {
        return Err(format!(
            "trace schema v{schema} (this tool reads v{TRACE_SCHEMA_VERSION})"
        ));
    }
    let text_field = |value: &Value, name: &str| {
        value
            .get(name)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("record has no string `{name}`"))
    };
    let binary = text_field(&header, "binary")?;
    let filter = text_field(&header, "filter")?;
    let mut labels: Vec<LabelTrace> = Vec::new();
    let mut index_of: BTreeMap<String, usize> = BTreeMap::new();
    for (index, line) in lines {
        let record = json::parse(line).map_err(|error| format!("line {}: {error}", index + 1))?;
        let at = |message: String| format!("line {}: {message}", index + 1);
        let kind = record
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or_else(|| at("record has no `kind`".into()))?;
        if kind == "header" {
            return Err(at("second header record".into()));
        }
        let label = text_field(&record, "label").map_err(at)?;
        let entry = *index_of.entry(label.clone()).or_insert_with(|| {
            labels.push(LabelTrace {
                label,
                events: Vec::new(),
                dropped: 0,
                cycles: 0,
            });
            labels.len() - 1
        });
        let number = |name: &str| {
            record
                .get(name)
                .and_then(|v| v.as_usize())
                .map(|n| n as u64)
                .ok_or_else(|| at(format!("record has no numeric `{name}`")))
        };
        match kind {
            "event" => {
                let name = text_field(&record, "event").map_err(at)?;
                let kind = kind_of(&name).ok_or_else(|| at(format!("unknown event `{name}`")))?;
                let stage = u32::try_from(number("stage")?)
                    .map_err(|_| at("`stage` exceeds u32".into()))?;
                labels[entry].events.push(Event {
                    cycle: number("cycle")?,
                    kind,
                    source: number("source")?,
                    tag: number("tag")?,
                    stage,
                    value: number("value")?,
                });
            }
            "summary" => {
                labels[entry].dropped = number("dropped")?;
                labels[entry].cycles = number("cycles")?;
            }
            other => return Err(at(format!("unknown record kind `{other}`"))),
        }
    }
    if let Some(wanted) = &options.label {
        labels.retain(|l| l.label.contains(wanted.as_str()));
        if labels.is_empty() {
            return Err(format!(
                "no label containing `{wanted}` in {}",
                options.trace.display()
            ));
        }
    }
    if labels.is_empty() {
        return Err(format!(
            "{}: header-only sidecar (the run recorded no events)",
            options.trace.display()
        ));
    }
    Ok(TraceData {
        binary,
        filter,
        labels,
    })
}

/// One reconstructed packet: everything that happened to one request
/// between its inject and its terminal event.
struct Packet {
    source: u64,
    tag: u64,
    /// Inject cycle; `None` when a filter cut the inject off (the packet
    /// is then excluded from latency statistics).
    inject: Option<u64>,
    /// `(cycle, stage, wire)` per granted hop, in stage order.
    hops: Vec<(u64, u32, u64)>,
    /// `(cycle, stage, losers)` per arbitration loss.
    blocks: Vec<(u64, u32, u64)>,
    /// The fault that killed it, when one did.
    fault: Option<(u64, u32)>,
    resubmits: u64,
    /// `(cycle, output)` on delivery.
    deliver: Option<(u64, u64)>,
}

impl Packet {
    fn open(source: u64, tag: u64, inject: Option<u64>) -> Packet {
        Packet {
            source,
            tag,
            inject,
            hops: Vec::new(),
            blocks: Vec::new(),
            fault: None,
            resubmits: 0,
            deliver: None,
        }
    }

    /// Delivery latency in cycles (inclusive of the inject cycle), when
    /// the packet both injected and delivered inside the trace.
    fn latency(&self) -> Option<u64> {
        let (inject, (deliver, _)) = (self.inject?, self.deliver?);
        Some(deliver - inject + 1)
    }
}

/// Rebuilds per-packet lifecycles from one label's event stream. Events
/// are in record order (cycle-monotone per source — the sidecar
/// validator's invariant), so a source's next inject closes its previous
/// packet.
fn packets_of(trace: &LabelTrace) -> Vec<Packet> {
    let mut packets: Vec<Packet> = Vec::new();
    let mut open: BTreeMap<u64, usize> = BTreeMap::new();
    for event in &trace.events {
        if event.kind == TraceEventKind::Inject {
            open.remove(&event.source);
        }
        let slot = *open.entry(event.source).or_insert_with(|| {
            let inject = (event.kind == TraceEventKind::Inject).then_some(event.cycle);
            packets.push(Packet::open(event.source, event.tag, inject));
            packets.len() - 1
        });
        let packet = &mut packets[slot];
        match event.kind {
            TraceEventKind::Inject => {}
            TraceEventKind::Hop => packet.hops.push((event.cycle, event.stage, event.value)),
            TraceEventKind::Block => packet.blocks.push((event.cycle, event.stage, event.value)),
            TraceEventKind::FaultDrop => packet.fault = Some((event.cycle, event.stage)),
            TraceEventKind::Resubmit => packet.resubmits += 1,
            TraceEventKind::Deliver => {
                packet.deliver = Some((event.cycle, event.value));
                open.remove(&event.source);
            }
        }
    }
    packets
}

/// One packet's lifecycle as a single human-readable line.
fn lifecycle_line(packet: &Packet) -> String {
    let mut line = format!("src {:>4} tag {:>4}: ", packet.source, packet.tag);
    match packet.inject {
        Some(cycle) => {
            let _ = write!(line, "inject @{cycle}");
        }
        None => line.push_str("(inject outside filter)"),
    }
    for &(_, stage, wire) in &packet.hops {
        let _ = write!(line, ", s{stage} w{wire}");
    }
    for &(cycle, stage, losers) in &packet.blocks {
        let _ = write!(line, ", block s{stage} @{cycle} ({losers} losers)");
    }
    if packet.resubmits > 0 {
        let _ = write!(line, ", resubmit x{}", packet.resubmits);
    }
    if let Some((cycle, stage)) = packet.fault {
        let _ = write!(line, ", fault-drop s{stage} @{cycle}");
    }
    match (packet.deliver, packet.latency()) {
        (Some((cycle, output)), Some(latency)) => {
            let _ = write!(line, ", deliver out {output} @{cycle} (latency {latency})");
        }
        (Some((cycle, output)), None) => {
            let _ = write!(line, ", deliver out {output} @{cycle}");
        }
        (None, _) if packet.fault.is_none() => line.push_str(" — undelivered"),
        _ => {}
    }
    line
}

fn print_lifecycles(trace: &LabelTrace, options: &Options) {
    let packets = packets_of(trace);
    let selected: Vec<&Packet> = packets
        .iter()
        .filter(|p| options.lifecycle_source.is_none_or(|s| p.source == s))
        .collect();
    println!("[{}] {} packet(s)", trace.label, selected.len());
    for packet in selected.iter().take(options.limit) {
        println!("  {}", lifecycle_line(packet));
    }
    if selected.len() > options.limit {
        println!(
            "  ... {} more (raise --limit or filter with --lifecycle SOURCE)",
            selected.len() - options.limit
        );
    }
    println!();
}

/// Per-stage grant statistics: `stage` 0 stands for the delivery row
/// (crossbar grants surface as deliver events).
struct StageUse {
    grants: u64,
    wires: BTreeMap<u64, u64>,
}

fn utilization_of(trace: &LabelTrace) -> BTreeMap<u32, StageUse> {
    let mut stages: BTreeMap<u32, StageUse> = BTreeMap::new();
    for event in &trace.events {
        let (stage, wire) = match event.kind {
            TraceEventKind::Hop => (event.stage, event.value),
            TraceEventKind::Deliver => (0, event.value),
            _ => continue,
        };
        let entry = stages.entry(stage).or_insert(StageUse {
            grants: 0,
            wires: BTreeMap::new(),
        });
        entry.grants += 1;
        *entry.wires.entry(wire).or_insert(0) += 1;
    }
    stages
}

fn print_utilization(trace: &LabelTrace) {
    let stages = utilization_of(trace);
    println!("[{}] grants per stage exit wire", trace.label);
    println!(
        "  {:<10} {:>8} {:>7} {:>12} {:>16}",
        "stage", "grants", "wires", "grants/wire", "busiest wire"
    );
    for (&stage, usage) in &stages {
        let name = if stage == 0 {
            "out".to_string()
        } else {
            format!("s{stage}")
        };
        let wires = usage.wires.len() as u64;
        let (busy_wire, busy_grants) = usage
            .wires
            .iter()
            .max_by_key(|&(wire, grants)| (*grants, std::cmp::Reverse(*wire)))
            .map(|(&w, &g)| (w, g))
            .unwrap_or((0, 0));
        println!(
            "  {:<10} {:>8} {:>7} {:>12.2} {:>10} ({busy_grants})",
            name,
            usage.grants,
            wires,
            usage.grants as f64 / wires.max(1) as f64,
            format!("w{busy_wire}"),
        );
    }
    println!();
}

/// One block site's contention record.
struct BlockSite {
    blocks: u64,
    losers_sum: u64,
    losers_max: u64,
    fault_drops: u64,
}

fn block_sites_of(trace: &LabelTrace) -> BTreeMap<u32, BlockSite> {
    let mut sites: BTreeMap<u32, BlockSite> = BTreeMap::new();
    for event in &trace.events {
        let site = sites.entry(event.stage).or_insert(BlockSite {
            blocks: 0,
            losers_sum: 0,
            losers_max: 0,
            fault_drops: 0,
        });
        match event.kind {
            TraceEventKind::Block => {
                site.blocks += 1;
                site.losers_sum += event.value;
                site.losers_max = site.losers_max.max(event.value);
            }
            TraceEventKind::FaultDrop => site.fault_drops += 1,
            _ => {}
        }
    }
    sites.retain(|_, site| site.blocks > 0 || site.fault_drops > 0);
    sites
}

fn print_blocks(trace: &LabelTrace) {
    let sites = block_sites_of(trace);
    if sites.is_empty() {
        println!("[{}] no blocks or fault drops recorded\n", trace.label);
        return;
    }
    let mut ranked: Vec<(u32, BlockSite)> = sites.into_iter().collect();
    ranked.sort_by_key(|(stage, site)| (std::cmp::Reverse(site.blocks), *stage));
    println!("[{}] block sites, worst first", trace.label);
    println!(
        "  {:<7} {:>8} {:>12} {:>11} {:>12}",
        "stage", "blocks", "mean losers", "max losers", "fault drops"
    );
    for (stage, site) in ranked {
        println!(
            "  {:<7} {:>8} {:>12.2} {:>11} {:>12}",
            format!("s{stage}"),
            site.blocks,
            site.losers_sum as f64 / site.blocks.max(1) as f64,
            site.losers_max,
            site.fault_drops,
        );
    }
    println!();
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn print_latency(trace: &LabelTrace) {
    let packets = packets_of(trace);
    let mut latencies: Vec<u64> = packets.iter().filter_map(Packet::latency).collect();
    let undelivered = packets.iter().filter(|p| p.deliver.is_none()).count();
    if latencies.is_empty() {
        println!(
            "[{}] no complete inject-to-deliver lifecycles ({undelivered} undelivered)\n",
            trace.label
        );
        return;
    }
    latencies.sort_unstable();
    println!(
        "[{}] delivery latency over {} packet(s) (cycles, inject inclusive): \
         p50 {}, p90 {}, p99 {}, max {}; {} undelivered",
        trace.label,
        latencies.len(),
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
        latencies[latencies.len() - 1],
        undelivered,
    );
    println!();
}

/// The shade ramp shared with `edn_plot`: activity 0 to 1, dim to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

fn shade(value: f64) -> char {
    let index = (value.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[index] as char
}

/// The time-space grid: one row per activity class (hops per stage, then
/// deliveries, then blocks), one column per cycle bucket; cell = event
/// count.
struct Diagram {
    rows: Vec<(String, Vec<u64>)>,
    cycles: u64,
    peak: u64,
}

fn diagram_of(trace: &LabelTrace, width: usize) -> Diagram {
    let cycles = trace
        .events
        .iter()
        .map(|e| e.cycle + 1)
        .max()
        .unwrap_or(1)
        .max(trace.cycles);
    let bucket_of = |cycle: u64| ((cycle * width as u64) / cycles) as usize;
    let stages: Vec<u32> = {
        let mut stages: Vec<u32> = trace
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Hop)
            .map(|e| e.stage)
            .collect();
        stages.sort_unstable();
        stages.dedup();
        stages
    };
    let mut rows: Vec<(String, Vec<u64>)> = stages
        .iter()
        .map(|stage| (format!("s{stage} hops"), vec![0u64; width]))
        .collect();
    let deliver_row = rows.len();
    rows.push(("deliver".to_string(), vec![0u64; width]));
    let block_row = rows.len();
    rows.push(("block".to_string(), vec![0u64; width]));
    for event in &trace.events {
        let row = match event.kind {
            TraceEventKind::Hop => match stages.binary_search(&event.stage) {
                Ok(index) => index,
                Err(_) => continue,
            },
            TraceEventKind::Deliver => deliver_row,
            TraceEventKind::Block | TraceEventKind::FaultDrop => block_row,
            _ => continue,
        };
        rows[row].1[bucket_of(event.cycle).min(width - 1)] += 1;
    }
    let peak = rows
        .iter()
        .flat_map(|(_, cells)| cells.iter().copied())
        .max()
        .unwrap_or(0);
    Diagram { rows, cycles, peak }
}

fn ascii_diagram(trace: &LabelTrace, diagram: &Diagram) -> String {
    let gutter = diagram
        .rows
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{}] time-space diagram: {} cycle(s), peak {} event(s)/cell",
        trace.label, diagram.cycles, diagram.peak
    );
    for (name, cells) in &diagram.rows {
        let _ = write!(out, "{name:>gutter$} |");
        for &count in cells {
            out.push(shade(count as f64 / diagram.peak.max(1) as f64));
        }
        out.push_str("|\n");
    }
    let width = diagram.rows.first().map_or(0, |(_, cells)| cells.len());
    let _ = writeln!(
        out,
        "{:>gutter$} +{}+\n{:>gutter$}  {:<left$}{:>right$}",
        "",
        "-".repeat(width),
        "",
        "cycle 0",
        format!("{}", diagram.cycles - 1),
        left = width / 2,
        right = width - width / 2,
    );
    out
}

/// Renders the diagram as an SVG grid in the `edn_plot` heatmap style:
/// white (idle) to the workspace plot blue (peak activity).
fn svg_diagram(trace: &LabelTrace, diagram: &Diagram) -> String {
    const CELL: f64 = 8.0;
    const ROW_H: f64 = 28.0;
    const TOP: f64 = 56.0;
    let gutter = 16.0
        + 7.2
            * diagram
                .rows
                .iter()
                .map(|(name, _)| name.len())
                .max()
                .unwrap_or(0) as f64;
    let width = diagram.rows.first().map_or(0, |(_, cells)| cells.len());
    let svg_width = gutter + CELL * width as f64 + 16.0;
    let svg_height = TOP + ROW_H * diagram.rows.len() as f64 + 32.0;
    let escape = |text: &str| {
        text.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let mut body = String::new();
    for (index, (name, cells)) in diagram.rows.iter().enumerate() {
        let y = TOP + ROW_H * index as f64;
        let _ = writeln!(
            body,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>",
            gutter - 6.0,
            y + ROW_H / 2.0 + 4.0,
            escape(name)
        );
        for (bucket, &count) in cells.iter().enumerate() {
            if count == 0 {
                continue; // the white background already is the zero cell
            }
            let v = count as f64 / diagram.peak.max(1) as f64;
            // edn-lint: allow(cast-audit) -- v is clamped to [0,1], so the value is in [0,255]
            let channel = |full: u8| (255.0 - (255.0 - f64::from(full)) * v).round() as u8;
            let (red, green, blue) = (channel(0x1f), channel(0x6f), channel(0x8b));
            let _ = writeln!(
                body,
                "<rect x=\"{:.1}\" y=\"{y:.1}\" width=\"{CELL}\" height=\"{ROW_H}\" \
                 fill=\"rgb({red},{green},{blue})\"/>",
                gutter + CELL * bucket as f64,
            );
        }
    }
    let axis_y = TOP + ROW_H * diagram.rows.len() as f64 + 16.0;
    let _ = writeln!(
        body,
        "<text x=\"{gutter:.1}\" y=\"{axis_y:.1}\">cycle 0</text>\n\
         <text x=\"{:.1}\" y=\"{axis_y:.1}\" text-anchor=\"end\">{}</text>",
        gutter + CELL * width as f64,
        diagram.cycles - 1,
    );
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{svg_width:.0}\" \
         height=\"{svg_height:.0}\" viewBox=\"0 0 {svg_width:.0} {svg_height:.0}\" \
         font-family=\"monospace\" font-size=\"12\">\n\
         <rect width=\"{svg_width:.0}\" height=\"{svg_height:.0}\" fill=\"white\"/>\n\
         <text x=\"16\" y=\"24\" font-size=\"14\">{}</text>\n{body}</svg>\n",
        escape(&trace.label),
    )
}

/// A filesystem-safe slug of a label (the `edn_plot` convention).
fn slug(title: &str) -> String {
    let mut out: String = title
        .chars()
        .map(|ch| if ch.is_ascii_alphanumeric() { ch } else { '_' })
        .collect();
    out.truncate(60);
    out
}

/// A JSON string literal of `text` (RFC 8259 escaping).
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if u32::from(ch) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(ch));
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Serializes the whole trace as Chrome trace-event JSON: one process
/// per label, one thread per source, timestamps in microseconds = one
/// simulated cycle each. Packets render as complete (`"X"`) slices from
/// inject to terminal event; hops as one-cycle nested slices; blocks,
/// fault drops, and resubmits as thread-scoped instants.
fn chrome_export(data: &TraceData) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, trace) in data.labels.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_string(&trace.label)
        ));
        for packet in packets_of(trace) {
            let tid = packet.source;
            let start = packet.inject.unwrap_or_else(|| {
                packet
                    .hops
                    .first()
                    .map(|&(cycle, _, _)| cycle)
                    .unwrap_or_default()
            });
            let end = [
                packet.deliver.map(|(cycle, _)| cycle),
                packet.fault.map(|(cycle, _)| cycle),
                packet.hops.last().map(|&(cycle, _, _)| cycle),
                packet.blocks.last().map(|&(cycle, _, _)| cycle),
            ]
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(start);
            let outcome = if packet.deliver.is_some() {
                "delivered"
            } else if packet.fault.is_some() {
                "fault_dropped"
            } else {
                "blocked"
            };
            events.push(format!(
                "{{\"name\":{},\"cat\":\"packet\",\"ph\":\"X\",\"ts\":{start},\
                 \"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"tag\":{},\
                 \"outcome\":\"{outcome}\",\"resubmits\":{}}}}}",
                json_string(&format!("pkt tag={}", packet.tag)),
                end - start + 1,
                packet.tag,
                packet.resubmits,
            ));
            for (cycle, stage, wire) in &packet.hops {
                events.push(format!(
                    "{{\"name\":{},\"cat\":\"hop\",\"ph\":\"X\",\"ts\":{cycle},\
                     \"dur\":1,\"pid\":{pid},\"tid\":{tid}}}",
                    json_string(&format!("s{stage} w{wire}")),
                ));
            }
            for (cycle, stage, losers) in &packet.blocks {
                events.push(format!(
                    "{{\"name\":{},\"cat\":\"block\",\"ph\":\"i\",\"ts\":{cycle},\
                     \"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\
                     \"args\":{{\"losers\":{losers}}}}}",
                    json_string(&format!("block s{stage}")),
                ));
            }
            if let Some((cycle, stage)) = packet.fault {
                events.push(format!(
                    "{{\"name\":{},\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{cycle},\
                     \"pid\":{pid},\"tid\":{tid},\"s\":\"t\"}}",
                    json_string(&format!("fault s{stage}")),
                ));
            }
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"binary\":{},\"filter\":{}}}}}\n",
        events.join(","),
        json_string(&data.binary),
        json_string(&data.filter),
    )
}

/// One routing record's per-stage aggregates from the metrics sidecar.
struct RoutingRecord {
    label: String,
    /// Per stage number: `(granted, blocked, fault_drops)`.
    stages: BTreeMap<u32, (u64, u64, u64)>,
}

fn load_routing(path: &PathBuf) -> Result<Vec<RoutingRecord>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("{}: {error}", path.display()))?;
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let record = json::parse(line).map_err(|error| format!("line {}: {error}", index + 1))?;
        if record.get("kind").and_then(|v| v.as_str()) != Some("routing") {
            continue;
        }
        let at = |message: String| format!("line {}: {message}", index + 1);
        let label = record
            .get("label")
            .and_then(|v| v.as_str())
            .ok_or_else(|| at("routing record has no `label`".into()))?
            .to_string();
        let stages_json = record
            .get("stages")
            .and_then(|v| v.as_array())
            .ok_or_else(|| at("routing record has no `stages` array".into()))?;
        let mut stages = BTreeMap::new();
        for stage in stages_json {
            let number = |name: &str| {
                stage
                    .get(name)
                    .and_then(|v| v.as_usize())
                    .map(|n| n as u64)
                    .ok_or_else(|| at(format!("stage entry has no numeric `{name}`")))
            };
            let stage =
                u32::try_from(number("stage")?).map_err(|_| at("`stage` exceeds u32".into()))?;
            stages.insert(
                stage,
                (
                    number("granted")?,
                    number("blocked")?,
                    number("fault_drops")?,
                ),
            );
        }
        records.push(RoutingRecord { label, stages });
    }
    if records.is_empty() {
        return Err(format!(
            "{}: no routing records to reconcile against",
            path.display()
        ));
    }
    Ok(records)
}

/// Cross-checks one label's trace event counts against its routing
/// record: per hyperbar stage, hops = granted, blocks = blocked,
/// fault drops = fault_drops; at the crossbar (the record's last stage)
/// the grants surface as deliver events. Exact when the recorder dropped
/// nothing; with drops the trace only lower-bounds the aggregates.
fn reconcile_label(trace: &LabelTrace, routing: &RoutingRecord) -> Result<usize, Vec<String>> {
    let mut per_stage: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
    let mut delivers = 0u64;
    let crossbar = routing.stages.keys().max().copied().unwrap_or(0);
    for event in &trace.events {
        let slot = per_stage.entry(event.stage).or_insert((0, 0, 0));
        match event.kind {
            TraceEventKind::Hop => slot.0 += 1,
            TraceEventKind::Block => slot.1 += 1,
            TraceEventKind::FaultDrop => slot.2 += 1,
            TraceEventKind::Deliver => delivers += 1,
            _ => {}
        }
    }
    let exact = trace.dropped == 0;
    let mut problems = Vec::new();
    let mut check = |what: String, traced: u64, aggregate: u64| {
        let ok = if exact {
            traced == aggregate
        } else {
            traced <= aggregate
        };
        if !ok {
            problems.push(format!(
                "{}: {what}: trace says {traced}, metrics say {aggregate}{}",
                trace.label,
                if exact { "" } else { " (ring overflowed)" },
            ));
        }
    };
    for (&stage, &(granted, blocked, fault_drops)) in &routing.stages {
        let (hops, blocks, faults) = per_stage.get(&stage).copied().unwrap_or((0, 0, 0));
        let traced_grants = if stage == crossbar { delivers } else { hops };
        check(format!("stage {stage} grants"), traced_grants, granted);
        check(format!("stage {stage} blocks"), blocks, blocked);
        check(format!("stage {stage} fault drops"), faults, fault_drops);
    }
    if problems.is_empty() {
        Ok(routing.stages.len())
    } else {
        Err(problems)
    }
}

fn print_summary(data: &TraceData) {
    println!(
        "trace of `{}`{}",
        data.binary,
        if data.filter.is_empty() {
            String::new()
        } else {
            format!(" (filter {})", data.filter)
        }
    );
    for trace in &data.labels {
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for event in &trace.events {
            *counts.entry(event.kind.name()).or_insert(0) += 1;
        }
        let breakdown: Vec<String> = TraceEventKind::ALL
            .iter()
            .filter_map(|kind| {
                let count = counts.get(kind.name())?;
                Some(format!("{count} {}", kind.name()))
            })
            .collect();
        println!(
            "  [{}] {} event(s) over {} cycle(s), {} dropped: {}",
            trace.label,
            trace.events.len(),
            trace.cycles,
            trace.dropped,
            if breakdown.is_empty() {
                "none".to_string()
            } else {
                breakdown.join(", ")
            }
        );
    }
    println!();
}

fn fail_data(message: &str) -> ! {
    eprintln!("edn_trace: {message}");
    std::process::exit(1);
}

fn main() {
    let options = match parse_options() {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("edn_trace: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let data = match load(&options) {
        Ok(data) => data,
        Err(message) => fail_data(&message),
    };
    if options.summary_only() {
        print_summary(&data);
        return;
    }
    for trace in &data.labels {
        if options.lifecycle {
            print_lifecycles(trace, &options);
        }
        if options.utilization {
            print_utilization(trace);
        }
        if options.blocks {
            print_blocks(trace);
        }
        if options.latency {
            print_latency(trace);
        }
        if options.diagram {
            let diagram = diagram_of(trace, options.width);
            print!("{}", ascii_diagram(trace, &diagram));
            println!();
            if let Some(dir) = &options.svg {
                if let Err(error) = std::fs::create_dir_all(dir) {
                    fail_data(&format!("creating {}: {error}", dir.display()));
                }
                let path = dir.join(format!("{}.svg", slug(&trace.label)));
                if let Err(error) = std::fs::write(&path, svg_diagram(trace, &diagram)) {
                    fail_data(&format!("writing {}: {error}", path.display()));
                }
                println!("wrote {}", path.display());
            }
        }
    }
    if let Some(path) = &options.chrome {
        let export = chrome_export(&data);
        // The export must load anywhere a trace viewer does: re-parse it
        // with the same strict parser the artifact validators use before
        // letting it out the door.
        let parsed = json::parse(export.trim_end())
            .unwrap_or_else(|error| fail_data(&format!("chrome export self-check: {error}")));
        let count = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .map(<[Value]>::len)
            .unwrap_or_else(|| fail_data("chrome export self-check: no traceEvents array"));
        if let Err(error) = std::fs::write(path, &export) {
            fail_data(&format!("writing {}: {error}", path.display()));
        }
        println!("wrote {count} trace event(s) to {}", path.display());
    }
    if let Some(path) = &options.reconcile {
        let routing = match load_routing(path) {
            Ok(routing) => routing,
            Err(message) => fail_data(&message),
        };
        let mut matched = 0usize;
        let mut stage_rows = 0usize;
        let mut problems: Vec<String> = Vec::new();
        for trace in &data.labels {
            let Some(record) = routing.iter().find(|r| r.label == trace.label) else {
                continue;
            };
            matched += 1;
            match reconcile_label(trace, record) {
                Ok(rows) => stage_rows += rows,
                Err(mut found) => problems.append(&mut found),
            }
        }
        if matched == 0 {
            fail_data(&format!(
                "no routing record in {} shares a label with the trace",
                path.display()
            ));
        }
        for problem in &problems {
            eprintln!("edn_trace: reconcile: {problem}");
        }
        if !problems.is_empty() {
            std::process::exit(1);
        }
        println!(
            "reconcile: {matched} label(s), {stage_rows} stage row(s): \
             trace counts match the StageProbe aggregates"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        cycle: u64,
        kind: TraceEventKind,
        source: u64,
        tag: u64,
        stage: u32,
        value: u64,
    ) -> Event {
        Event {
            cycle,
            kind,
            source,
            tag,
            stage,
            value,
        }
    }

    fn label_trace(events: Vec<Event>) -> LabelTrace {
        let cycles = events.iter().map(|e| e.cycle + 1).max().unwrap_or(0);
        LabelTrace {
            label: "test".to_string(),
            events,
            dropped: 0,
            cycles,
        }
    }

    #[test]
    fn packets_reconstruct_full_lifecycles() {
        use TraceEventKind::*;
        let trace = label_trace(vec![
            event(0, Inject, 3, 9, 0, 0),
            event(0, Hop, 3, 9, 1, 4),
            event(0, Block, 3, 9, 2, 2),
            event(1, Resubmit, 3, 9, 0, 0),
            event(1, Hop, 3, 9, 1, 4),
            event(1, Hop, 3, 9, 2, 7),
            event(1, Deliver, 3, 9, 0, 9),
            // A second packet from the same source after delivery.
            event(2, Inject, 3, 1, 0, 0),
            event(2, FaultDrop, 3, 1, 1, 0),
        ]);
        let packets = packets_of(&trace);
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].latency(), Some(2));
        assert_eq!(packets[0].hops.len(), 3);
        assert_eq!(packets[0].blocks, vec![(0, 2, 2)]);
        assert_eq!(packets[0].resubmits, 1);
        assert_eq!(packets[0].deliver, Some((1, 9)));
        assert_eq!(packets[1].fault, Some((2, 1)));
        assert_eq!(packets[1].latency(), None);
    }

    #[test]
    fn filtered_traces_make_implicit_packets_without_latency() {
        use TraceEventKind::*;
        // A cycle-window filter can cut the inject off: the hop still
        // reconstructs a packet, but one excluded from latency stats.
        let trace = label_trace(vec![
            event(5, Hop, 2, 8, 1, 0),
            event(5, Deliver, 2, 8, 0, 8),
        ]);
        let packets = packets_of(&trace);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].inject, None);
        assert_eq!(packets[0].latency(), None);
        assert_eq!(packets[0].deliver, Some((5, 8)));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 90.0), 90);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn chrome_export_is_strictly_valid_json() {
        use TraceEventKind::*;
        let data = TraceData {
            binary: "tab_nuts".to_string(),
            filter: String::new(),
            labels: vec![label_trace(vec![
                event(0, Inject, 1, 2, 0, 0),
                event(0, Hop, 1, 2, 1, 3),
                event(0, Block, 1, 2, 2, 1),
                event(1, Inject, 4, 2, 0, 0),
                event(1, FaultDrop, 4, 2, 1, 0),
            ])],
        };
        let export = chrome_export(&data);
        let parsed = json::parse(export.trim_end()).expect("strict JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 1 process metadata + 2 packets + 1 hop + 1 block + 1 fault.
        assert_eq!(events.len(), 6);
        // A quoted label with JSON-hostile characters survives escaping.
        let hostile = TraceData {
            binary: "x".to_string(),
            filter: "source=1".to_string(),
            labels: vec![LabelTrace {
                label: "quote \" backslash \\ tab \t".to_string(),
                events: vec![event(0, Inject, 0, 0, 0, 0)],
                dropped: 0,
                cycles: 1,
            }],
        };
        assert!(json::parse(chrome_export(&hostile).trim_end()).is_ok());
    }

    #[test]
    fn reconcile_accepts_matching_counts_and_names_mismatches() {
        use TraceEventKind::*;
        let trace = label_trace(vec![
            event(0, Inject, 0, 3, 0, 0),
            event(0, Hop, 0, 3, 1, 0),
            event(0, Deliver, 0, 3, 0, 3),
            event(0, Inject, 1, 3, 0, 0),
            event(0, Block, 1, 3, 1, 1),
        ]);
        let routing = RoutingRecord {
            label: "test".to_string(),
            stages: [(1, (1, 1, 0)), (2, (1, 0, 0))].into_iter().collect(),
        };
        assert_eq!(reconcile_label(&trace, &routing), Ok(2));
        let wrong = RoutingRecord {
            label: "test".to_string(),
            stages: [(1, (2, 1, 0)), (2, (1, 0, 0))].into_iter().collect(),
        };
        let problems = reconcile_label(&trace, &wrong).unwrap_err();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("stage 1 grants"), "{problems:?}");
        // With ring overflow the trace only lower-bounds the aggregates.
        let mut overflowed = label_trace(vec![event(0, Hop, 0, 3, 1, 0)]);
        overflowed.dropped = 10;
        assert_eq!(reconcile_label(&overflowed, &wrong), Ok(2));
    }

    #[test]
    fn diagram_buckets_cycles_and_finds_peak() {
        use TraceEventKind::*;
        let trace = label_trace(vec![
            event(0, Hop, 0, 0, 1, 0),
            event(0, Hop, 1, 0, 1, 1),
            event(9, Deliver, 0, 0, 0, 0),
        ]);
        let diagram = diagram_of(&trace, 10);
        assert_eq!(diagram.cycles, 10);
        assert_eq!(diagram.peak, 2);
        let s1 = &diagram.rows[0];
        assert_eq!(s1.0, "s1 hops");
        assert_eq!(s1.1[0], 2);
        let deliver = diagram.rows.iter().find(|(n, _)| n == "deliver").unwrap();
        assert_eq!(deliver.1[9], 1);
    }
}
