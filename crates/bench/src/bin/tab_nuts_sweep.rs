//! TAB-NUTS-SWEEP — (extension) hot-spot (NUTS) intensity sweep.
//!
//! Where `tab_nuts` isolates the collateral damage of one hot spot at a
//! handful of intensities, this scenario sweeps the full hot-spot
//! intensity axis as a first-class Monte-Carlo grid: (fabric × hot
//! fraction × seed), every point an independent [`HotSpotTraffic`]
//! measurement on the engine hot path. It reports, per fabric and
//! intensity, the overall acceptance with a seed-level confidence
//! interval and the degradation relative to the uniform (`h = 0`)
//! baseline of the same fabric — the quantity the paper's "reduce
//! conflicts or Non Uniform Traffic Spots" claim is about.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per
//! (fabric, intensity) row — its seed axis measured inside the task, the
//! `h = 0` baseline re-derived from the same seeds so every row is a
//! pure function of its coordinates and `--shard` splits the grid across
//! processes; `--threads/--seeds/--cycles/--out/--shard` as everywhere.

use edn_bench::{fmt_f, SweepArgs};
use edn_core::EdnParams;
use edn_sim::{estimate_pa_lanes, ArbiterKind, RunningStats};
use edn_sweep::Table;
use edn_traffic::HotSpotTraffic;

/// One (fabric, intensity) cell aggregated over seeds.
#[derive(Clone)]
struct Cell {
    mean: f64,
    ci95: f64,
    delivered: u64,
    offered: u64,
}

/// Measures one (fabric, intensity) cell: independent seeded Monte-Carlo
/// runs, folded into a mean with a seed-level CI.
fn measure_cell(params: &EdnParams, intensity: f64, seeds: &[u64], cycles: u32) -> Cell {
    let hot_output = params.outputs() / 2;
    // The whole seed axis rides the lane engine — 64 hot-spot replicas
    // per traversal, each bit-identical to its scalar estimate_pa_with.
    let lane_seeds: Vec<u64> = seeds
        .iter()
        .map(|&seed| seed ^ (intensity.to_bits().rotate_left(17)))
        .collect();
    let estimates = estimate_pa_lanes(
        params,
        |_seed| {
            HotSpotTraffic::new(
                params.inputs(),
                params.outputs(),
                1.0,
                hot_output,
                intensity,
            )
        },
        ArbiterKind::Random,
        cycles,
        &lane_seeds,
    );
    let mut stats = RunningStats::new();
    let mut delivered = 0u64;
    let mut offered = 0u64;
    for estimate in &estimates {
        stats.push(estimate.mean);
        delivered += estimate.delivered;
        offered += estimate.offered;
    }
    Cell {
        mean: stats.mean(),
        ci95: 1.96 * stats.std_error(),
        delivered,
        offered,
    }
}

fn main() {
    let args = SweepArgs::parse(
        "tab_nuts_sweep",
        "TAB-NUTS-SWEEP: acceptance vs hot-spot intensity on equal 256-port fabrics.",
        4,
    );
    let cycles = args.cycles_or(60);
    println!("TAB-NUTS-SWEEP: hot-spot intensity sweep, equal 256-port fabrics, r = 1.\n");

    let edn4 = EdnParams::new(16, 4, 4, 3).expect("valid"); // c = 4
    let delta = EdnParams::new(4, 4, 1, 4).expect("valid"); // c = 1
    assert_eq!(edn4.inputs(), delta.inputs());
    let fabrics = [("EDN(16,4,4,3) c=4", edn4), ("EDN(4,4,1,4) delta", delta)];
    let intensities = [0.0, 0.05, 0.10, 0.20, 0.40];
    let seeds = args.seed_list(0x2075);

    let mut table = Table::new(
        "TAB-NUTS-SWEEP: acceptance vs hot-spot intensity (seed-level CI95)",
        &[
            "fabric",
            "hot fraction",
            "acceptance",
            "CI95 +-",
            "vs h=0",
            "delivered",
            "offered",
        ],
    );
    // Grid: fabric-major, intensity-minor — one pool task per row,
    // seeded from the row coordinates only. The `vs h=0` column needs the
    // fabric's uniform baseline; it is measured **lazily, once per fabric
    // with a fresh row**, from the same seeds every row would use — so
    // rows stay pure functions of their coordinates (bit-identical across
    // shard splits), the h = 0 rows reuse the very same cell instead of
    // measuring twice, and a fully warm `--cache` run simulates nothing.
    let total_rows = fabrics.len() * intensities.len();
    let baselines: Vec<std::sync::OnceLock<Cell>> = (0..fabrics.len())
        .map(|_| std::sync::OnceLock::new())
        .collect();
    let mut emit = args.plan_emit(&[(&table, total_rows)]);
    let cells = emit.run_table(
        &mut table,
        || (),
        |(), row| {
            let fabric = row / intensities.len();
            let (name, params) = fabrics[fabric];
            let intensity = intensities[row % intensities.len()];
            let baseline =
                baselines[fabric].get_or_init(|| measure_cell(&params, 0.0, &seeds, cycles));
            let cell = if intensity == 0.0 {
                baseline.clone()
            } else {
                measure_cell(&params, intensity, &seeds, cycles)
            };
            let cells = vec![
                name.to_string(),
                fmt_f(intensity, 2),
                fmt_f(cell.mean, 4),
                fmt_f(cell.ci95, 4),
                fmt_f(cell.mean - baseline.mean, 4),
                cell.delivered.to_string(),
                cell.offered.to_string(),
            ];
            (cells, cell)
        },
        // Cached replay: the narration Cell parses back out of the row.
        |cells, _| Cell {
            mean: cells[2].parse().expect("cached mean"),
            ci95: cells[3].parse().expect("cached ci95"),
            delivered: cells[5].parse().expect("cached delivered"),
            offered: cells[6].parse().expect("cached offered"),
        },
    );
    table.print();

    println!("Reading: the hot output is a serial bottleneck no topology can widen —");
    println!("its excess messages are lost on every fabric, so acceptance falls with h");
    println!("roughly in parallel across fabrics. What multipath buys is the *level*:");
    if emit.is_full() {
        for (f, (name, _)) in fabrics.iter().enumerate() {
            let h0 = cells[f * intensities.len()].mean;
            let h_max = cells[(f + 1) * intensities.len() - 1].mean;
            println!(
                "  {name}: acceptance {h0:.4} (uniform) -> {h_max:.4} at h = {:.2}, drop {:.4}",
                intensities[intensities.len() - 1],
                h0 - h_max
            );
        }
    }
    println!("Each point is an independent seeded Monte-Carlo run; rows are identical");
    println!("for every --threads value and every --shard split.");
    emit.finish();
}
