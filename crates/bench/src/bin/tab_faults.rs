//! TAB-FAULTS — (extension) fault tolerance of multipath EDNs.
//!
//! The paper motivates capacity `c > 1` by contention; the same redundancy
//! is a fault-tolerance budget. All `c` wires of a bucket reach the same
//! next-stage switch, so a source/destination pair survives until an
//! entire bucket on its switch sequence dies — probability `f^c` per
//! bucket at wire-fault rate `f` — while the unique-path delta network
//! (`c = 1`) is severed by any fault on its path.
//!
//! Two metrics at equal port count (256), sweeping the wire-fault rate:
//! the fraction of (source, destination) pairs still connected, and the
//! simulated full-load acceptance of the degraded fabric.

use edn_bench::{fmt_f, Table};
use edn_core::{
    route_batch_faulty, route_one_with_faults, EdnParams, EdnTopology, FaultRouting, FaultSet,
    PriorityArbiter, RouteRequest,
};

fn connectivity(topology: &EdnTopology, faults: &FaultSet, samples: u64) -> f64 {
    let params = topology.params();
    let mut connected = 0u64;
    for i in 0..samples {
        let source = (i * 2654435761) % params.inputs();
        let tag = (i * 40503 + 17) % params.outputs();
        if matches!(
            route_one_with_faults(topology, faults, source, tag).expect("valid indices"),
            FaultRouting::Delivered(_)
        ) {
            connected += 1;
        }
    }
    connected as f64 / samples as f64
}

fn degraded_pa(topology: &EdnTopology, faults: &FaultSet, cycles: u64) -> f64 {
    let params = topology.params();
    let mut offered = 0u64;
    let mut delivered = 0u64;
    for cycle in 0..cycles {
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, (s * 131 + cycle * 7919 + 23) % params.outputs()))
            .collect();
        let outcome = route_batch_faulty(topology, &requests, faults, &mut PriorityArbiter::new());
        offered += outcome.offered() as u64;
        delivered += outcome.delivered_count() as u64;
    }
    delivered as f64 / offered as f64
}

fn main() {
    println!("TAB-FAULTS: wire faults on equal 256-port fabrics.\n");
    let edn = EdnTopology::new(EdnParams::new(16, 4, 4, 3).expect("valid")); // c = 4
    let half = EdnTopology::new(EdnParams::new(8, 4, 2, 4).expect("valid")); // c = 2
    let delta = EdnTopology::new(EdnParams::new(4, 4, 1, 4).expect("valid")); // c = 1
    assert_eq!(edn.params().inputs(), 256);
    assert_eq!(delta.params().inputs(), 256);
    assert_eq!(half.params().inputs(), 512); // nearest c=2 square sibling

    let mut table = Table::new(
        "TAB-FAULTS: pair connectivity and degraded PA(1) vs wire-fault rate",
        &[
            "fault rate",
            "EDN c=4 connected",
            "EDN c=2 connected",
            "delta c=1 connected",
            "EDN c=4 PA(1)",
            "delta PA(1)",
        ],
    );
    for (i, fraction) in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20].into_iter().enumerate() {
        let seed = 1000 + i as u64;
        let edn_faults = FaultSet::random(edn.params(), fraction, seed);
        let half_faults = FaultSet::random(half.params(), fraction, seed);
        let delta_faults = FaultSet::random(delta.params(), fraction, seed);
        table.row(vec![
            fmt_f(fraction, 2),
            fmt_f(connectivity(&edn, &edn_faults, 2000), 4),
            fmt_f(connectivity(&half, &half_faults, 2000), 4),
            fmt_f(connectivity(&delta, &delta_faults, 2000), 4),
            fmt_f(degraded_pa(&edn, &edn_faults, 40), 4),
            fmt_f(degraded_pa(&delta, &delta_faults, 40), 4),
        ]);
    }
    table.print();
    println!("Reading: pair survival scales like (1 - f^c)^(buckets on path) — at a 5%");
    println!("wire-fault rate the capacity-4 EDN keeps >99.9% of pairs connected while");
    println!("the delta network has already lost ~1 - (1-0.05)^l of them. Degraded");
    println!("acceptance shrinks gracefully with capacity, by roughly the healthy-wire");
    println!("fraction, instead of cliff-dropping with severed paths.");
}
