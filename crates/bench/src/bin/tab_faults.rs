//! TAB-FAULTS — (extension) fault tolerance of multipath EDNs.
//!
//! The paper motivates capacity `c > 1` by contention; the same redundancy
//! is a fault-tolerance budget. All `c` wires of a bucket reach the same
//! next-stage switch, so a source/destination pair survives until an
//! entire bucket on its switch sequence dies — probability `f^c` per
//! bucket at wire-fault rate `f` — while the unique-path delta network
//! (`c = 1`) is severed by any fault on its path.
//!
//! Two metrics at equal port count (256), sweeping the wire-fault rate:
//! the fraction of (source, destination) pairs still connected, and the
//! simulated full-load acceptance of the degraded fabric.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per fault
//! rate (measuring all three fabrics on per-worker cached engines and
//! fault bitmasks), rows streamed as they complete;
//! `--threads/--cycles/--out/--shard` as everywhere.

use edn_bench::{fmt_f, SweepArgs, SweepWorker};
use edn_core::{
    route_one_with_faults, EdnParams, EdnTopology, FaultRouting, FaultSet, PriorityArbiter,
    RouteRequest, RoutingEngine,
};
use edn_sweep::Table;

fn connectivity(topology: &EdnTopology, faults: &FaultSet, samples: u64) -> f64 {
    let params = topology.params();
    let mut connected = 0u64;
    for i in 0..samples {
        let source = (i * 2654435761) % params.inputs();
        let tag = (i * 40503 + 17) % params.outputs();
        if matches!(
            route_one_with_faults(topology, faults, source, tag).expect("valid indices"),
            FaultRouting::Delivered(_)
        ) {
            connected += 1;
        }
    }
    connected as f64 / samples as f64
}

fn degraded_pa(
    engine: &mut RoutingEngine,
    requests: &mut Vec<RouteRequest>,
    faults: &FaultSet,
    cycles: u64,
) -> f64 {
    let params = *engine.params();
    let mut offered = 0u64;
    let mut delivered = 0u64;
    for cycle in 0..cycles {
        requests.clear();
        requests.extend(
            (0..params.inputs())
                .map(|s| RouteRequest::new(s, (s * 131 + cycle * 7919 + 23) % params.outputs())),
        );
        let outcome = engine.route_faulty(requests, faults, &mut PriorityArbiter::new());
        offered += outcome.offered() as u64;
        delivered += outcome.delivered_count() as u64;
    }
    delivered as f64 / offered as f64
}

/// What one pool task measures for its (fault rate, fabric) point.
struct Row {
    connected: f64,
    pa: Option<f64>,
}

fn main() {
    let args = SweepArgs::parse(
        "tab_faults",
        "TAB-FAULTS: pair connectivity and degraded acceptance under wire faults,\n\
         equal 256-port fabrics.",
        1,
    );
    let cycles = args.cycles_or(40) as u64;
    println!("TAB-FAULTS: wire faults on equal 256-port fabrics.\n");
    let edn = EdnParams::new(16, 4, 4, 3).expect("valid"); // c = 4
    let half = EdnParams::new(8, 4, 2, 4).expect("valid"); // c = 2
    let delta = EdnParams::new(4, 4, 1, 4).expect("valid"); // c = 1
    assert_eq!(edn.inputs(), 256);
    assert_eq!(delta.inputs(), 256);
    assert_eq!(half.inputs(), 512); // nearest c=2 square sibling

    let fractions = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];
    let fabrics = [edn, half, delta];

    let mut table = Table::new(
        "TAB-FAULTS: pair connectivity and degraded PA(1) vs wire-fault rate",
        &[
            "fault rate",
            "EDN c=4 connected",
            "EDN c=2 connected",
            "delta c=1 connected",
            "EDN c=4 PA(1)",
            "delta PA(1)",
        ],
    );
    // One pool task per fault-rate row, measuring all three fabrics on
    // the worker's cached engines and fault bitmasks. The degraded-PA
    // column is only measured for the c=4 EDN and the delta (as in the
    // original table).
    let mut emit = args.plan_emit(&[(&table, fractions.len())]);
    emit.run_rows(&mut table, SweepWorker::new, |worker, row| {
        let fraction = fractions[row];
        let seed = 1000 + row as u64;
        let measured: Vec<Row> = fabrics
            .iter()
            .map(|params| {
                let (engine, requests, faults) =
                    worker.engine_requests_faults(params, fraction, seed);
                let connected = connectivity(engine.topology(), faults, 2000);
                let pa = (*params == edn || *params == delta)
                    .then(|| degraded_pa(engine, requests, faults, cycles));
                Row { connected, pa }
            })
            .collect();
        vec![
            fmt_f(fraction, 2),
            fmt_f(measured[0].connected, 4),
            fmt_f(measured[1].connected, 4),
            fmt_f(measured[2].connected, 4),
            fmt_f(measured[0].pa.expect("EDN PA measured"), 4),
            fmt_f(measured[2].pa.expect("delta PA measured"), 4),
        ]
    });
    table.print();
    println!("Reading: pair survival scales like (1 - f^c)^(buckets on path) — at a 5%");
    println!("wire-fault rate the capacity-4 EDN keeps >99.9% of pairs connected while");
    println!("the delta network has already lost ~1 - (1-0.05)^l of them. Degraded");
    println!("acceptance shrinks gracefully with capacity, by roughly the healthy-wire");
    println!("fraction, instead of cliff-dropping with severed paths.");
    emit.finish();
}
