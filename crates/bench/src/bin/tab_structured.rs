//! TAB-STRUCTURED — (extension) structured-permutation sweep.
//!
//! Sections 3.2.1 and 5 analyze *random* permutations; real SIMD codes
//! route *structured* ones — matrix transpose, FFT bit reversal, perfect
//! shuffles, displacements — and multistage networks classically either
//! shine or collapse on exactly these (the paper's own Figure 5 identity
//! collapse being the canonical example). This scenario sweeps every
//! named structured permutation in `edn_traffic` across two square EDNs,
//! measuring on the engine hot path:
//!
//! * one-pass acceptance as wired (Figure 5's setting),
//! * one-pass acceptance with the Corollary-2 bit-reordered retirement
//!   and compensating inverse stage (Figure 6's setting, exercising the
//!   engine's cached inverse-order path),
//! * passes to route the permutation to completion as wired.
//!
//! Random-permutation rows average over `--seeds` seeds; every (network,
//! permutation) row is one work-stealing pool task, streamed to the
//! artifact as it completes.
//! `--threads/--seeds/--out/--shard` as everywhere.

use edn_bench::{fmt_f, SweepArgs, SweepWorker};
use edn_core::{EdnParams, PriorityArbiter, RetirementOrder, RoutingEngine};
use edn_sim::RunningStats;
use edn_sweep::Table;
use edn_traffic::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The named structured permutations of the sweep.
const NAMES: [&str; 8] = [
    "identity",
    "bit reversal",
    "perfect shuffle",
    "transpose",
    "butterfly",
    "displacement +1",
    "vector reversal",
    "random (mean)",
];

fn build(name: &str, n: u64, seed: u64) -> Permutation {
    match name {
        "identity" => Permutation::identity(n),
        "bit reversal" => Permutation::bit_reversal(n).expect("power-of-two network"),
        "perfect shuffle" => Permutation::perfect_shuffle(n).expect("power-of-two network"),
        "transpose" => Permutation::transpose(n).expect("4^k network"),
        "butterfly" => Permutation::butterfly(n).expect("power-of-two network"),
        "displacement +1" => Permutation::displacement(n, 1),
        "vector reversal" => Permutation::reversal(n),
        "random (mean)" => Permutation::random(n, &mut StdRng::seed_from_u64(seed)),
        other => unreachable!("unknown permutation {other}"),
    }
}

/// One (network, permutation) measurement.
struct Cell {
    one_pass: f64,
    reordered: f64,
    passes: f64,
}

/// Routes `perm` one pass as wired and reordered, then to completion.
fn measure(engine: &mut RoutingEngine, perm: &Permutation) -> Cell {
    let params = *engine.params();
    let order = RetirementOrder::rotate_left(params.output_bits(), params.log2_b())
        .expect("valid rotation");
    let requests = perm.to_requests();

    let one_pass = engine
        .route(&requests, &mut PriorityArbiter::new())
        .acceptance_rate();
    let reordered = engine
        .route_reordered(&requests, &order, &mut PriorityArbiter::new())
        .acceptance_rate();

    // Multi-pass completion as wired: rejected sources retry next pass.
    let mut remaining = requests;
    let mut passes = 0u32;
    while !remaining.is_empty() && passes < 256 {
        passes += 1;
        let outcome = engine.route(&remaining, &mut PriorityArbiter::new());
        let delivered: std::collections::HashSet<u64> = outcome
            .delivered()
            .iter()
            .map(|&(source, _)| source)
            .collect();
        remaining.retain(|r| !delivered.contains(&r.source));
    }
    assert!(remaining.is_empty(), "permutation failed to complete");
    Cell {
        one_pass,
        reordered,
        passes: passes as f64,
    }
}

fn main() {
    let args = SweepArgs::parse(
        "tab_structured",
        "TAB-STRUCTURED: structured permutations, as-wired vs bit-reordered routing.",
        4,
    );
    println!("TAB-STRUCTURED: structured permutations on square EDNs, priority arbiter.\n");

    // Both shapes are 4^k ports, so every named permutation (including
    // the transpose) is defined.
    let networks = [
        EdnParams::new(16, 4, 4, 3).expect("valid"),  // 256 ports
        EdnParams::new(64, 16, 4, 2).expect("valid"), // 1024 ports, Figure 5's
    ];
    let seeds = args.seed_list(0x57A7);

    let mut table = Table::new(
        "TAB-STRUCTURED: one-pass acceptance and passes to completion",
        &[
            "network",
            "permutation",
            "as-wired PA_p",
            "reordered PA_p",
            "as-wired passes",
        ],
    );
    // One pool task per (network, permutation) row; the random row
    // averages its seeds inside the task (cost still dominated by the
    // two big networks, which stealing spreads across workers).
    let mut emit = args.plan_emit(&[(&table, networks.len() * NAMES.len())]);
    let cells = emit.run_table(
        &mut table,
        SweepWorker::new,
        |worker, row| {
            let params = networks[row / NAMES.len()];
            let name = NAMES[row % NAMES.len()];
            let engine = worker.engine(&params);
            let cell = if name == "random (mean)" {
                let mut one_pass = RunningStats::new();
                let mut reordered = RunningStats::new();
                let mut passes = RunningStats::new();
                for &seed in &seeds {
                    let cell = measure(engine, &build(name, params.inputs(), seed));
                    one_pass.push(cell.one_pass);
                    reordered.push(cell.reordered);
                    passes.push(cell.passes);
                }
                Cell {
                    one_pass: one_pass.mean(),
                    reordered: reordered.mean(),
                    passes: passes.mean(),
                }
            } else {
                measure(engine, &build(name, params.inputs(), 0))
            };
            let row_cells = vec![
                params.to_string(),
                name.to_string(),
                fmt_f(cell.one_pass, 4),
                fmt_f(cell.reordered, 4),
                fmt_f(cell.passes, 1),
            ];
            (row_cells, cell)
        },
        // Cached replay: the narration Cell parses back out of the row.
        |cells, _| Cell {
            one_pass: cells[2].parse().expect("cached one_pass"),
            reordered: cells[3].parse().expect("cached reordered"),
            passes: cells[4].parse().expect("cached passes"),
        },
    );
    table.print();

    // The Figure 5/6 anchor, restated from the sweep (a shard only holds
    // its slice, so the anchor is a full-run narration).
    if !emit.is_full() {
        emit.finish();
        return;
    }
    let fig5 = &cells[NAMES.len()]; // identity on EDN(64,16,4,2)
    println!("Reading: the identity on EDN(64,16,4,2) reproduces Figure 5's collapse");
    println!(
        "({:.4} one-pass as wired) and Figure 6's cure ({:.4} with the rotated",
        fig5.one_pass, fig5.reordered
    );
    println!("retirement + inverse stage); on that network the same rotation routes");
    println!("every source-aligned permutation (identity, displacement, reversal,");
    println!("shuffle) conflict-free. The 256-port rows show the flip side of");
    println!("Corollary 2: a retirement order is a per-network, per-workload choice —");
    println!("the rotation that cures EDN(64,16,4,2) *hurts* several structured");
    println!("permutations on EDN(16,4,4,3), whose depth retires different digits.");
    println!("Passes to completion track 1/PA_p as Section 5's resubmission model");
    println!("predicts; random permutations sit in the high-acceptance band either way.");
    emit.finish();
}
