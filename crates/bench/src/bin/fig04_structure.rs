//! FIG4 — the paper's Figures 3–5 structural claims.
//!
//! Figure 4 draws `EDN(16,4,4,2)`: 4 hyperbars per stage, 16 four-by-four
//! crossbars, all interstage links as 4-wire bundles. Figure 5 draws
//! `EDN(64,16,4,2)` with 1024 ports. This binary prints the full stage
//! inventory of both networks from the implementation, plus the digit
//! retirement schedule of Figure 4's caption ("2 bits / 2 bits / where
//! bits are retired for routing").
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per
//! inventory row; `--threads/--out/--shard` as everywhere.

use edn_bench::{SweepArgs, Table};
use edn_core::{DestTag, EdnParams, EdnTopology};

/// Row `i` of a network's stage inventory: stages `0..l` are hyperbar
/// stages, row `l` is the crossbar stage.
fn structure_row(params: &EdnParams, i: usize) -> Vec<String> {
    // edn-lint: allow(cast-audit) -- i indexes l+1 stage rows, l <= 63
    let stage = i as u32 + 1;
    if stage <= params.l() {
        vec![
            stage.to_string(),
            params.hyperbars_in_stage(stage).to_string(),
            format!("H({} -> {} x {})", params.a(), params.b(), params.c()),
            params.wires_before_stage(stage).to_string(),
            params.wires_after_stage(stage).to_string(),
            format!("{} (digit d_{})", params.log2_b(), params.l() - stage),
        ]
    } else {
        vec![
            (params.l() + 1).to_string(),
            params.crossbar_count().to_string(),
            format!("{} x {} crossbar", params.c(), params.c()),
            params.outputs().to_string(),
            params.outputs().to_string(),
            format!("{} (digit x)", params.log2_c()),
        ]
    }
}

const STRUCTURE_COLUMNS: [&str; 6] = [
    "stage",
    "switches",
    "switch shape",
    "in wires",
    "out wires",
    "bits retired",
];

fn main() {
    let args = SweepArgs::parse(
        "fig04_structure",
        "Figures 4-5: stage inventories and the Lemma 1 routing-tag walk.",
        1,
    );
    println!("Figure 4 (EDN(16,4,4,2)) and Figure 5 (EDN(64,16,4,2)) structure.\n");
    let fig4 = EdnParams::new(16, 4, 4, 2).expect("paper parameters are valid");
    let fig5 = EdnParams::new(64, 16, 4, 2).expect("paper parameters are valid");
    let networks = [fig4, fig5];
    let notes = [
        "Paper's Figure 4: stages S0..S3 (4 hyperbars each), 16 4x4 crossbars,\n\
         \"all thick lines consist of 4 parallel wires\" -> 64-wire planes. Check.\n",
        "Paper's Figure 5: inputs a0..a1023, 16 hyperbars per stage. Check.\n",
    ];

    // Routing-tag walk-through for one source/destination pair, matching
    // the Lemma 1 proof notation. Computed up front (the trace is one
    // cheap path walk) so the walk table's row count is known at plan
    // time.
    let topo = EdnTopology::new(fig4);
    let source = 37u64;
    let dest = 57u64;
    let tag = DestTag::from_output_index(&fig4, dest).expect("valid output");
    let trace = topo.trace_path(source, dest, &[1, 2]).expect("valid trace");
    let mut walk_rows: Vec<Vec<String>> = (1..=fig4.l())
        .map(|i| {
            vec![
                i.to_string(),
                trace.entry_lines()[(i - 1) as usize].to_string(),
                trace.switch_at_stage(&fig4, i).to_string(),
                tag.digit_for_stage(i).to_string(),
                trace.exit_lines()[(i - 1) as usize].to_string(),
            ]
        })
        .collect();
    walk_rows.push(vec![
        (fig4.l() + 1).to_string(),
        trace.entry_lines()[fig4.l() as usize].to_string(),
        trace.final_crossbar(&fig4).to_string(),
        tag.crossbar_digit().to_string(),
        trace.output().to_string(),
    ]);
    assert_eq!(trace.output(), dest);

    let mut inventories: Vec<Table> = networks
        .iter()
        .map(|params| Table::new(&format!("{params}: stage inventory"), &STRUCTURE_COLUMNS))
        .collect();
    let mut walk = Table::new(
        &format!("Lemma 1 walk: S={source} -> D={dest} ({tag}), choices K=(1,2)"),
        &["stage", "entry line", "switch", "digit", "exit line"],
    );
    let (first, second) = {
        let mut iter = inventories.iter();
        (iter.next().unwrap(), iter.next().unwrap())
    };
    let mut emit = args.plan_emit(&[
        (first, fig4.l() as usize + 1),
        (second, fig5.l() as usize + 1),
        (&walk, walk_rows.len()),
    ]);

    for (index, params) in networks.iter().enumerate() {
        let table = &mut inventories[index];
        emit.run_rows(table, || (), |(), row| structure_row(params, row));
        table.print();
        println!(
            "inputs = {}, outputs = {}, paths per pair = c^l = {}\n",
            params.inputs(),
            params.outputs(),
            params.path_count()
        );
        println!("{}", notes[index]);
    }

    emit.table_rows(&mut walk, walk_rows);
    walk.print();
    println!("Delivered to D = {dest} as Theorem 1 requires.");
    emit.finish();
}
