//! FIG2 — the paper's Figure 2: a sample routing on an `H(8 -> 4 x 2)`
//! hyperbar.
//!
//! The figure presents control digits `[3,2,3,1,2,2,0,3]` and notes that
//! with input-label priority, "inputs 5 and 7 are discarded". This binary
//! replays the exact scenario and also shows how the alternative
//! arbitration policies spread the rejections.

use edn_bench::Table;
use edn_core::{Arbiter, Hyperbar, PriorityArbiter, RandomArbiter, RoundRobinArbiter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let switch = Hyperbar::new(8, 4, 2).expect("valid switch shape");
    let digits = [3u64, 2, 3, 1, 2, 2, 0, 3];
    let requests: Vec<Option<u64>> = digits.iter().map(|&d| Some(d)).collect();

    println!("Figure 2: H(8 -> 4 x 2) hyperbar, control digits {digits:?}");
    println!("Paper: with input-label priority, inputs 5 and 7 are discarded.\n");

    let mut table = Table::new(
        "FIG2: per-input outcome (priority arbitration)",
        &["input", "digit", "granted wire", "bucket", "status"],
    );
    let outcome = switch
        .route(&requests, &mut PriorityArbiter::new())
        .expect("valid digits");
    for (input, (&granted, &digit)) in outcome.assignments().iter().zip(digits.iter()).enumerate() {
        match granted {
            Some(wire) => table.row(vec![
                input.to_string(),
                digit.to_string(),
                wire.to_string(),
                (wire / 2).to_string(),
                "accepted".to_string(),
            ]),
            None => table.row(vec![
                input.to_string(),
                digit.to_string(),
                "-".to_string(),
                digit.to_string(),
                "DISCARDED".to_string(),
            ]),
        }
    }
    table.print();

    let rejected: Vec<usize> = outcome.rejected_inputs(&requests).collect();
    println!("reproduced rejection set: {rejected:?}  (paper: [5, 7])\n");

    let mut policies = Table::new(
        "FIG2b: same offered digits under other arbitration policies",
        &["policy", "accepted", "rejected inputs"],
    );
    let arbiters: Vec<(&str, Box<dyn Arbiter>)> = vec![
        ("priority", Box::new(PriorityArbiter::new())),
        ("round-robin", Box::new(RoundRobinArbiter::new())),
        (
            "random(seed=1)",
            Box::new(RandomArbiter::new(StdRng::seed_from_u64(1))),
        ),
    ];
    for (name, mut arbiter) in arbiters {
        let outcome = switch
            .route(&requests, arbiter.as_mut())
            .expect("valid digits");
        let rejected: Vec<String> = outcome
            .rejected_inputs(&requests)
            .map(|i| i.to_string())
            .collect();
        policies.row(vec![
            name.to_string(),
            outcome.accepted().to_string(),
            format!("[{}]", rejected.join(", ")),
        ]);
    }
    policies.print();
    println!("Every policy accepts exactly 6 of 8 (bucket 2 and 3 are oversubscribed).");
}
