//! FIG2 — the paper's Figure 2: a sample routing on an `H(8 -> 4 x 2)`
//! hyperbar.
//!
//! The figure presents control digits `[3,2,3,1,2,2,0,3]` and notes that
//! with input-label priority, "inputs 5 and 7 are discarded". This binary
//! replays the exact scenario and also shows how the alternative
//! arbitration policies spread the rejections.
//!
//! Runs on the `edn_sweep` streaming harness: the per-input outcome rows
//! come from one priority routing, the policy comparison runs one pool
//! task per arbitration policy; `--threads/--out/--shard` as everywhere.

use edn_bench::{SweepArgs, Table};
use edn_core::{Arbiter, Hyperbar, PriorityArbiter, RandomArbiter, RoundRobinArbiter};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = SweepArgs::parse(
        "fig02_hyperbar",
        "Figure 2: the paper's sample routing on an H(8 -> 4 x 2) hyperbar.",
        1,
    );
    let switch = Hyperbar::new(8, 4, 2).expect("valid switch shape");
    let digits = [3u64, 2, 3, 1, 2, 2, 0, 3];
    let requests: Vec<Option<u64>> = digits.iter().map(|&d| Some(d)).collect();

    println!("Figure 2: H(8 -> 4 x 2) hyperbar, control digits {digits:?}");
    println!("Paper: with input-label priority, inputs 5 and 7 are discarded.\n");

    // One priority routing produces every per-input row.
    let outcome = switch
        .route(&requests, &mut PriorityArbiter::new())
        .expect("valid digits");
    let outcome_rows: Vec<Vec<String>> = outcome
        .assignments()
        .iter()
        .zip(digits.iter())
        .enumerate()
        .map(|(input, (&granted, &digit))| match granted {
            Some(wire) => vec![
                input.to_string(),
                digit.to_string(),
                wire.to_string(),
                (wire / 2).to_string(),
                "accepted".to_string(),
            ],
            None => vec![
                input.to_string(),
                digit.to_string(),
                "-".to_string(),
                digit.to_string(),
                "DISCARDED".to_string(),
            ],
        })
        .collect();

    let mut table = Table::new(
        "FIG2: per-input outcome (priority arbitration)",
        &["input", "digit", "granted wire", "bucket", "status"],
    );
    let mut policies = Table::new(
        "FIG2b: same offered digits under other arbitration policies",
        &["policy", "accepted", "rejected inputs"],
    );
    let policy_names = ["priority", "round-robin", "random(seed=1)"];

    let mut emit = args.plan_emit(&[
        (&table, outcome_rows.len()),
        (&policies, policy_names.len()),
    ]);
    emit.table_rows(&mut table, outcome_rows);
    table.print();

    let rejected: Vec<usize> = outcome.rejected_inputs(&requests).collect();
    println!("reproduced rejection set: {rejected:?}  (paper: [5, 7])\n");

    // One pool task per policy: each builds its arbiter and routes the
    // same offered digits.
    emit.run_rows(
        &mut policies,
        || (),
        |(), row| {
            let mut arbiter: Box<dyn Arbiter> = match row {
                0 => Box::new(PriorityArbiter::new()),
                1 => Box::new(RoundRobinArbiter::new()),
                _ => Box::new(RandomArbiter::new(StdRng::seed_from_u64(1))),
            };
            let outcome = switch
                .route(&requests, arbiter.as_mut())
                .expect("valid digits");
            let rejected: Vec<String> = outcome
                .rejected_inputs(&requests)
                .map(|i| i.to_string())
                .collect();
            vec![
                policy_names[row].to_string(),
                outcome.accepted().to_string(),
                format!("[{}]", rejected.join(", ")),
            ]
        },
    );
    policies.print();
    println!("Every policy accepts exactly 6 of 8 (bucket 2 and 3 are oversubscribed).");
    emit.finish();
}
