//! TAB-COST — Section 3.1, Eqs. (2)–(3): crosspoint and wire cost.
//!
//! The paper's conclusion: EDNs "exhibit similar performance to crossbar
//! switches for a given size network, but with a cost approximating that
//! of the delta network". This binary prints, for matched port counts:
//! the exact and closed-form costs of each EDN family, the delta network,
//! and the crossbar, plus the performance-per-cost ratio that drives the
//! paper's argument.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per table
//! row; `--threads/--out/--shard` as everywhere.

use edn_analytic::pa::{crossbar_pa, probability_of_acceptance};
use edn_bench::{fmt_f, SweepArgs, Table};
use edn_core::cost::{
    crossbar_crosspoints, crossbar_wires, crosspoint_cost, crosspoint_cost_closed_form, wire_cost,
    wire_cost_closed_form,
};
use edn_core::EdnParams;

fn main() {
    let args = SweepArgs::parse(
        "tab_cost",
        "Section 3.1: crosspoint and wire cost model vs performance at matched sizes.",
        1,
    );
    println!("Section 3.1: cost model (crosspoints Cs, wires Cw).\n");

    // Closed form vs exact sum across a parameter sweep (both square and
    // rectangular shapes), one pool task per shape.
    let mut check = Table::new(
        "TAB-COST a: closed forms vs exact sums",
        &["network", "Cs exact", "Cs closed", "Cw exact", "Cw closed"],
    );
    let shapes: Vec<EdnParams> = [
        (16u64, 4u64, 4u64, 3u32),
        (8, 2, 4, 5),
        (8, 8, 1, 4),
        (64, 16, 4, 2),
        (8, 4, 4, 3),
        (16, 2, 4, 3),
    ]
    .into_iter()
    .map(|(a, b, c, l)| EdnParams::new(a, b, c, l).expect("valid sweep parameters"))
    .collect();
    let mut versus = Table::new(
        "TAB-COST b: cost and PA(1) at matched port count",
        &[
            "N",
            "network",
            "crosspoints",
            "wires",
            "PA(1)",
            "PA/Mcrosspoint",
        ],
    );
    let levels = [3u32, 4, 5];
    let mut emit = args.plan_emit(&[(&check, shapes.len()), (&versus, levels.len() * 3)]);

    emit.run_rows(
        &mut check,
        || (),
        |(), row| {
            let p = &shapes[row];
            let (cs, csf) = (crosspoint_cost(p), crosspoint_cost_closed_form(p));
            let (cw, cwf) = (wire_cost(p), wire_cost_closed_form(p));
            assert_eq!(cs, csf, "{p}");
            assert_eq!(cw, cwf, "{p}");
            vec![
                p.to_string(),
                cs.to_string(),
                csf.to_string(),
                cw.to_string(),
                cwf.to_string(),
            ]
        },
    );
    check.print();

    // Cost and performance at matched sizes: the conclusion's argument.
    // Three rows per matched size (EDN, delta, crossbar), each a pool
    // task.
    emit.run_rows(
        &mut versus,
        || (),
        |(), row| {
            let l4 = levels[row / 3];
            let edn = EdnParams::new(16, 4, 4, l4).expect("valid EDN");
            let n = edn.inputs();
            let delta_l = n.trailing_zeros() / 2; // radix-4 delta of the same size
            let delta = EdnParams::delta(4, 4, delta_l).expect("valid delta");
            assert_eq!(delta.inputs(), n, "matched sizes");
            let (name, cs, cw, pa) = match row % 3 {
                0 => (
                    format!("{edn}"),
                    crosspoint_cost(&edn),
                    wire_cost(&edn),
                    probability_of_acceptance(&edn, 1.0),
                ),
                1 => (
                    format!("{delta} (delta)"),
                    crosspoint_cost(&delta),
                    wire_cost(&delta),
                    probability_of_acceptance(&delta, 1.0),
                ),
                _ => (
                    "crossbar".to_string(),
                    crossbar_crosspoints(n, n),
                    crossbar_wires(n, n),
                    crossbar_pa(n, 1.0),
                ),
            };
            vec![
                n.to_string(),
                name,
                cs.to_string(),
                cw.to_string(),
                fmt_f(pa, 4),
                fmt_f(pa / (cs as f64 / 1.0e6), 2),
            ]
        },
    );
    versus.print();
    println!("Shape check (paper's conclusion): the EDN's PA(1) tracks the crossbar's");
    println!("while its crosspoint cost stays within a small factor of the delta's —");
    println!("the crossbar's quadratic cost dwarfs both at large N.");
    emit.finish();
}
