//! `edn_plot` — regenerate figures from sweep artifacts, no
//! re-simulation.
//!
//! ```text
//! edn_plot run.jsonl                       # every table: text table + ASCII curve
//! edn_plot run.jsonl --table "FIG7..."     # one table only
//! edn_plot run.jsonl --x "hot fraction" --y acceptance
//! edn_plot run.jsonl --svg plots/          # also write one SVG per table
//! ```
//!
//! The PR 4 schema header made every `--out` artifact self-describing:
//! the header names each table and its columns, and every row carries
//! its cells as typed JSON. This tool is the payoff — it reads an
//! artifact back through `edn_sweep::json` (dependency-free, like
//! everything here) and renders, **per declared table**:
//!
//! * the aligned text table, rebuilt from the stored rows;
//! * an ASCII curve of `--y` against `--x` (default: the first two
//!   numeric columns), when the table has one;
//! * with `--svg DIR`, an SVG curve per table.
//!
//! A day-long sweep's figures can therefore be restyled, re-plotted, or
//! re-examined forever without touching the simulator — the ROADMAP's
//! "plotting from artifacts" contract.
//!
//! `--heatmap` reads the **metrics sidecar** (`*.metrics.jsonl`)
//! instead: every `{"kind": "routing"}` record — a stage-resolved
//! [`StageProbe`] snapshot an experiment recorded — becomes one row of a
//! stage-utilization heatmap (exit-wire grant rate per stage), rendered
//! in ASCII and, with `--svg DIR`, as an SVG grid.

use edn_sweep::json::{self, Value};
use edn_sweep::{SchemaHeader, Table};
use std::path::PathBuf;

const USAGE: &str = "regenerate figures from a sweep artifact (no re-simulation)\n\n\
    Usage: edn_plot ARTIFACT.jsonl [OPTIONS]\n\n\
    Options:\n  \
    --table TITLE  render only the named table (default: all declared)\n  \
    --x COL        x column (default: first numeric column)\n  \
    --y COL        y column (default: next numeric column after x)\n  \
    --width N      ASCII plot width in columns (default: 64)\n  \
    --height N     ASCII plot height in rows (default: 16)\n  \
    --svg DIR      also write DIR/<table>.svg per rendered table\n  \
    --no-curve     text tables only\n  \
    --heatmap      ARTIFACT is a *.metrics.jsonl sidecar: render a\n                 \
    stage-utilization heatmap from its routing records\n  \
    --help         print this message";

struct Options {
    artifact: PathBuf,
    table: Option<String>,
    x: Option<String>,
    y: Option<String>,
    width: usize,
    height: usize,
    svg: Option<PathBuf>,
    curve: bool,
    heatmap: bool,
}

fn parse_options() -> Result<Option<Options>, String> {
    let mut args = std::env::args().skip(1);
    let mut artifact = None;
    let mut table = None;
    let mut x = None;
    let mut y = None;
    let mut width = 64usize;
    let mut height = 16usize;
    let mut svg = None;
    let mut curve = true;
    let mut heatmap = false;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--table" => table = Some(value("--table")?),
            "--x" => x = Some(value("--x")?),
            "--y" => y = Some(value("--y")?),
            "--width" => {
                width = value("--width")?
                    .parse()
                    .ok()
                    .filter(|&w| w >= 8)
                    .ok_or("--width expects an integer >= 8")?;
            }
            "--height" => {
                height = value("--height")?
                    .parse()
                    .ok()
                    .filter(|&h| h >= 4)
                    .ok_or("--height expects an integer >= 4")?;
            }
            "--svg" => svg = Some(PathBuf::from(value("--svg")?)),
            "--no-curve" => curve = false,
            "--heatmap" => heatmap = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path if artifact.is_none() => artifact = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let artifact = artifact.ok_or("no artifact given")?;
    Ok(Some(Options {
        artifact,
        table,
        x,
        y,
        width,
        height,
        svg,
        curve,
        heatmap,
    }))
}

/// One table read back from the artifact: header schema plus parsed rows.
struct TableData {
    title: String,
    columns: Vec<String>,
    /// Per row: the display cell and, when numeric, its value.
    rows: Vec<Vec<(String, Option<f64>)>>,
}

/// Renders one JSON value as a table cell (`-` for null, minimal float
/// formatting) plus its numeric reading when it has one.
fn cell_of(value: Option<&Value>) -> (String, Option<f64>) {
    match value {
        Some(Value::Number(x)) => {
            let text = if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x}")
            };
            (text, Some(*x))
        }
        Some(Value::String(s)) => (s.clone(), None),
        Some(Value::Bool(b)) => (b.to_string(), None),
        Some(Value::Null) | None => ("-".to_string(), None),
        Some(other) => (format!("{other:?}"), None),
    }
}

fn load(options: &Options) -> Result<Vec<TableData>, String> {
    let text = std::fs::read_to_string(&options.artifact)
        .map_err(|error| format!("{}: {error}", options.artifact.display()))?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("artifact is empty")?;
    let header = SchemaHeader::parse(header_line).map_err(|error| format!("header: {error}"))?;
    let mut tables: Vec<TableData> = header
        .tables
        .iter()
        .map(|schema| TableData {
            title: schema.title.clone(),
            columns: schema.columns.clone(),
            rows: Vec::new(),
        })
        .collect();
    for (index, line) in lines.enumerate() {
        let row = json::parse(line).map_err(|error| format!("row {}: {error}", index + 1))?;
        let title = row
            .get("table")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("row {} has no `table` field", index + 1))?;
        let table = tables
            .iter_mut()
            .find(|t| t.title == title)
            .ok_or_else(|| format!("row {} names undeclared table `{title}`", index + 1))?;
        table
            .rows
            .push(table.columns.iter().map(|c| cell_of(row.get(c))).collect());
    }
    if let Some(wanted) = &options.table {
        tables.retain(|t| &t.title == wanted);
        if tables.is_empty() {
            return Err(format!(
                "no table titled `{wanted}` in {} (declared: {})",
                options.artifact.display(),
                header
                    .tables
                    .iter()
                    .map(|t| format!("`{}`", t.title))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    Ok(tables)
}

/// Picks the curve axes: `--x`/`--y` by name, else the first two columns
/// that are numeric on every row that has them.
fn pick_axes(data: &TableData, options: &Options) -> Result<Option<(usize, usize)>, String> {
    let by_name = |name: &str| {
        data.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| format!("table `{}` has no column `{name}`", data.title))
    };
    let numeric = |col: usize| {
        let values = data.rows.iter().filter(|row| row[col].1.is_some()).count();
        values >= 2
    };
    let x = match &options.x {
        Some(name) => Some(by_name(name)?),
        None => (0..data.columns.len()).find(|&c| numeric(c)),
    };
    let Some(x) = x else { return Ok(None) };
    let y = match &options.y {
        Some(name) => Some(by_name(name)?),
        None => (x + 1..data.columns.len()).find(|&c| numeric(c)),
    };
    let Some(y) = y else { return Ok(None) };
    Ok(Some((x, y)))
}

/// The (x, y) points of one curve, in row order.
fn points_of(data: &TableData, x: usize, y: usize) -> Vec<(f64, f64)> {
    data.rows
        .iter()
        .filter_map(|row| row[x].1.zip(row[y].1))
        .collect()
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut low = f64::INFINITY;
    let mut high = f64::NEG_INFINITY;
    for v in values {
        low = low.min(v);
        high = high.max(v);
    }
    if low == high {
        // A flat series still needs a non-degenerate axis.
        (low - 0.5, high + 0.5)
    } else {
        (low, high)
    }
}

/// Renders the ASCII curve: a bordered grid with `*` marks, y bounds on
/// the left, x bounds underneath.
fn ascii_curve(points: &[(f64, f64)], x_name: &str, y_name: &str, w: usize, h: usize) -> String {
    let (x_lo, x_hi) = bounds(points.iter().map(|p| p.0));
    let (y_lo, y_hi) = bounds(points.iter().map(|p| p.1));
    let mut grid = vec![vec![' '; w]; h];
    for &(x, y) in points {
        let col = ((x - x_lo) / (x_hi - x_lo) * (w - 1) as f64).round() as usize;
        let row = ((y - y_lo) / (y_hi - y_lo) * (h - 1) as f64).round() as usize;
        grid[h - 1 - row][col.min(w - 1)] = '*';
    }
    let label_lo = format!("{y_lo:.4}");
    let label_hi = format!("{y_hi:.4}");
    let gutter = label_lo.len().max(label_hi.len());
    let mut out = String::new();
    out.push_str(&format!("{y_name} vs {x_name} ({} points)\n", points.len()));
    for (index, line) in grid.iter().enumerate() {
        let label = if index == 0 {
            &label_hi
        } else if index == h - 1 {
            &label_lo
        } else {
            ""
        };
        out.push_str(&format!(
            "{label:>gutter$} |{}|\n",
            line.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "{:>gutter$} +{}+\n{:>gutter$}  {:<width$}{:>right$}\n",
        "",
        "-".repeat(w),
        "",
        format!("{x_lo:.4}"),
        format!("{x_hi:.4}"),
        width = w / 2,
        right = w - w / 2,
    ));
    out
}

/// Renders one SVG curve: axes, polyline, point markers, labels.
fn svg_curve(points: &[(f64, f64)], title: &str, x_name: &str, y_name: &str) -> String {
    const W: f64 = 640.0;
    const H: f64 = 400.0;
    const M: f64 = 48.0; // margin
    let (x_lo, x_hi) = bounds(points.iter().map(|p| p.0));
    let (y_lo, y_hi) = bounds(points.iter().map(|p| p.1));
    let sx = |x: f64| M + (x - x_lo) / (x_hi - x_lo) * (W - 2.0 * M);
    let sy = |y: f64| H - M - (y - y_lo) / (y_hi - y_lo) * (H - 2.0 * M);
    let escape = |text: &str| {
        text.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let polyline: Vec<String> = points
        .iter()
        .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
        .collect();
    let markers: String = points
        .iter()
        .map(|&(x, y)| {
            format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#1f6f8b\"/>",
                sx(x),
                sy(y)
            )
        })
        .collect();
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"monospace\" font-size=\"12\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
         <text x=\"{M}\" y=\"20\" font-size=\"14\">{}</text>\n\
         <line x1=\"{M}\" y1=\"{ax}\" x2=\"{bx}\" y2=\"{ax}\" stroke=\"black\"/>\n\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{ax}\" stroke=\"black\"/>\n\
         <text x=\"{M}\" y=\"{lx}\">{x_lo:.4}</text>\n\
         <text x=\"{bx}\" y=\"{lx}\" text-anchor=\"end\">{x_hi:.4}</text>\n\
         <text x=\"{ty}\" y=\"{ay}\" transform=\"rotate(-90 {ty} {ay})\">{}</text>\n\
         <text x=\"{cx}\" y=\"{lx2}\" text-anchor=\"middle\">{}</text>\n\
         <text x=\"{m4}\" y=\"{ya}\" text-anchor=\"end\">{y_hi:.4}</text>\n\
         <text x=\"{m4}\" y=\"{ax}\" text-anchor=\"end\">{y_lo:.4}</text>\n\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#1f6f8b\" stroke-width=\"1.5\"/>\n\
         {markers}\n</svg>\n",
        escape(title),
        escape(y_name),
        escape(x_name),
        polyline.join(" "),
        ax = H - M,
        bx = W - M,
        lx = H - M + 16.0,
        lx2 = H - M + 32.0,
        ty = 14.0,
        ay = H / 2.0,
        cx = W / 2.0,
        m4 = M - 4.0,
        ya = M + 4.0,
    )
}

/// One routing record of a metrics sidecar, reduced to its per-stage
/// exit-wire utilization (grants per wire per cycle).
struct HeatRow {
    label: String,
    utilization: Vec<f64>,
}

/// Reads every `{"kind": "routing"}` record of a metrics sidecar into
/// heatmap rows; other record kinds (`run`, `table`) are skipped.
fn load_heatmap(path: &PathBuf) -> Result<Vec<HeatRow>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("{}: {error}", path.display()))?;
    let mut rows = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let record = json::parse(line).map_err(|error| format!("line {}: {error}", index + 1))?;
        if record.get("kind").and_then(|v| v.as_str()) != Some("routing") {
            continue;
        }
        let field = |name: &str| {
            record
                .get(name)
                .ok_or_else(|| format!("line {}: routing record has no `{name}`", index + 1))
        };
        let label = field("label")?
            .as_str()
            .ok_or_else(|| format!("line {}: `label` is not a string", index + 1))?
            .to_string();
        let cycles = field("cycles")?
            .as_f64()
            .ok_or_else(|| format!("line {}: `cycles` is not a number", index + 1))?;
        let stages = field("stages")?
            .as_array()
            .ok_or_else(|| format!("line {}: `stages` is not an array", index + 1))?;
        let utilization = stages
            .iter()
            .map(|stage| {
                let number = |name: &str| {
                    stage.get(name).and_then(|v| v.as_f64()).ok_or_else(|| {
                        format!("line {}: stage entry has no numeric `{name}`", index + 1)
                    })
                };
                let (granted, wires) = (number("granted")?, number("wires")?);
                if cycles <= 0.0 || wires <= 0.0 {
                    Ok(0.0)
                } else {
                    Ok(granted / (cycles * wires))
                }
            })
            .collect::<Result<Vec<f64>, String>>()?;
        rows.push(HeatRow { label, utilization });
    }
    if rows.is_empty() {
        return Err(format!(
            "{}: no routing records (is this a *.metrics.jsonl sidecar \
             from an experiment that recorded probe snapshots?)",
            path.display()
        ));
    }
    Ok(rows)
}

/// The shade ramp: utilization 0 to 1, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

fn shade(value: f64) -> char {
    let index = (value.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[index] as char
}

/// Renders the ASCII heatmap: one row per routing record, one 4-wide
/// shaded cell per stage (crossbar last), values printed underneath.
fn ascii_heatmap(rows: &[HeatRow]) -> String {
    let gutter = rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
    let stages = rows.iter().map(|r| r.utilization.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str("stage utilization: exit-wire grants / (cycles x wires)\n\n");
    out.push_str(&format!("{:>gutter$} ", ""));
    for stage in 1..=stages {
        out.push_str(&format!(" s{stage:<3}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:>gutter$} ", row.label));
        for &value in &row.utilization {
            out.push_str(&format!(" {}", shade(value).to_string().repeat(4)));
        }
        out.push('\n');
        out.push_str(&format!("{:>gutter$} ", ""));
        for &value in &row.utilization {
            out.push_str(&format!(" {value:.2}"));
        }
        out.push('\n');
    }
    out.push_str("\nscale:");
    for (index, &byte) in RAMP.iter().enumerate() {
        out.push_str(&format!(
            " '{}'={:.1}",
            byte as char,
            index as f64 / (RAMP.len() - 1) as f64
        ));
    }
    out.push('\n');
    out
}

/// Renders the SVG heatmap: a labeled grid of cells, white (idle) to
/// deep blue (saturated), each carrying its value.
fn svg_heatmap(rows: &[HeatRow], title: &str) -> String {
    const CELL: f64 = 56.0;
    const ROW_H: f64 = 36.0;
    const TOP: f64 = 56.0;
    let gutter = 16.0 + 7.2 * rows.iter().map(|r| r.label.len()).max().unwrap_or(0) as f64;
    let stages = rows.iter().map(|r| r.utilization.len()).max().unwrap_or(0);
    let width = gutter + CELL * stages as f64 + 16.0;
    let height = TOP + ROW_H * rows.len() as f64 + 16.0;
    let escape = |text: &str| {
        text.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };
    let mut body = String::new();
    for stage in 0..stages {
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">s{}</text>\n",
            gutter + CELL * (stage as f64 + 0.5),
            TOP - 8.0,
            stage + 1
        ));
    }
    for (index, row) in rows.iter().enumerate() {
        let y = TOP + ROW_H * index as f64;
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            gutter - 6.0,
            y + ROW_H / 2.0 + 4.0,
            escape(&row.label)
        ));
        for (stage, &value) in row.utilization.iter().enumerate() {
            let v = value.clamp(0.0, 1.0);
            // White at 0 to the workspace's plot blue (#1f6f8b) at 1.
            // edn-lint: allow(cast-audit) -- v is clamped to [0,1], so the value is in [0,255]
            let channel = |full: u8| (255.0 - (255.0 - f64::from(full)) * v).round() as u8;
            let (red, green, blue) = (channel(0x1f), channel(0x6f), channel(0x8b));
            let x = gutter + CELL * stage as f64;
            body.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{CELL}\" height=\"{ROW_H}\" \
                 fill=\"rgb({red},{green},{blue})\" stroke=\"white\"/>\n\
                 <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" fill=\"{}\">{v:.2}</text>\n",
                x + CELL / 2.0,
                y + ROW_H / 2.0 + 4.0,
                if v > 0.55 { "white" } else { "black" },
            ));
        }
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"monospace\" font-size=\"12\">\n\
         <rect width=\"{width:.0}\" height=\"{height:.0}\" fill=\"white\"/>\n\
         <text x=\"16\" y=\"24\" font-size=\"14\">{}</text>\n{body}</svg>\n",
        escape(title),
    )
}

/// A filesystem-safe slug of a table title.
fn slug(title: &str) -> String {
    let mut out: String = title
        .chars()
        .map(|ch| if ch.is_ascii_alphanumeric() { ch } else { '_' })
        .collect();
    out.truncate(60);
    out
}

fn main() {
    let options = match parse_options() {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("edn_plot: {message}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if options.heatmap {
        let rows = match load_heatmap(&options.artifact) {
            Ok(rows) => rows,
            Err(message) => {
                eprintln!("edn_plot: {message}");
                std::process::exit(1);
            }
        };
        print!("{}", ascii_heatmap(&rows));
        if let Some(dir) = &options.svg {
            if let Err(error) = std::fs::create_dir_all(dir) {
                eprintln!("edn_plot: creating {}: {error}", dir.display());
                std::process::exit(1);
            }
            let title = format!("stage utilization — {}", options.artifact.display());
            let path = dir.join("stage_utilization.svg");
            if let Err(error) = std::fs::write(&path, svg_heatmap(&rows, &title)) {
                eprintln!("edn_plot: writing {}: {error}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
        return;
    }
    let tables = match load(&options) {
        Ok(tables) => tables,
        Err(message) => {
            eprintln!("edn_plot: {message}");
            std::process::exit(1);
        }
    };
    if let Some(dir) = &options.svg {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("edn_plot: creating {}: {error}", dir.display());
            std::process::exit(1);
        }
    }
    // Distinct tables must never overwrite each other's SVG, even when
    // their titles collapse to one slug (punctuation-only differences,
    // or divergence past the slug length).
    let mut used_slugs = std::collections::HashMap::new();
    for data in &tables {
        // The text table, rebuilt from the artifact alone.
        let column_refs: Vec<&str> = data.columns.iter().map(String::as_str).collect();
        let mut table = Table::new(&data.title, &column_refs);
        for row in &data.rows {
            table.row(row.iter().map(|(text, _)| text.clone()).collect());
        }
        table.print();
        if !options.curve {
            continue;
        }
        let axes = match pick_axes(data, &options) {
            Ok(axes) => axes,
            Err(message) => {
                eprintln!("edn_plot: {message}");
                std::process::exit(1);
            }
        };
        let Some((x, y)) = axes else {
            println!("(no two numeric columns to plot)\n");
            continue;
        };
        let points = points_of(data, x, y);
        if points.len() < 2 {
            println!("(fewer than two plottable points)\n");
            continue;
        }
        print!(
            "{}",
            ascii_curve(
                &points,
                &data.columns[x],
                &data.columns[y],
                options.width,
                options.height
            )
        );
        println!();
        if let Some(dir) = &options.svg {
            let base = slug(&data.title);
            let copies = used_slugs.entry(base.clone()).or_insert(0usize);
            *copies += 1;
            let name = if *copies == 1 {
                format!("{base}.svg")
            } else {
                format!("{base}_{copies}.svg")
            };
            let path = dir.join(name);
            let svg = svg_curve(&points, &data.title, &data.columns[x], &data.columns[y]);
            if let Err(error) = std::fs::write(&path, svg) {
                eprintln!("edn_plot: writing {}: {error}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
    }
}
