//! `edn_orchestrate` — one-command shard scale-out for any experiment
//! binary.
//!
//! ```text
//! edn_orchestrate --jobs 3 --out run.jsonl -- target/release/tab_faults --cycles 2
//! edn_orchestrate --jobs 8 --cache cache/ --out run.jsonl -- ./tab_nuts_sweep --seeds 4
//! ```
//!
//! The driver turns the `--shard I/N` contract (every shard an
//! independent process, artifacts mergeable bit-exactly) into a single
//! command: it launches `--jobs N` child processes — shard `i/N` each,
//! plus `--out` into a scratch directory and `--cache DIR` when given —
//! monitors their exits, **retries** failed shards with fresh shard
//! files (bounded by `--retries`), and finally drives the
//! [`edn_sweep::merge`] layer to splice the shard artifacts (and, via
//! the row cache, any previously computed cells) into one artifact that
//! is byte-identical to the unsharded run's.
//!
//! The children inherit this process's environment, so provenance
//! (`EDN_GIT_REV`, `EDN_HOST`, `EDN_RUN_STARTED`) and `EDN_SWEEP_CACHE`
//! stamp every shard identically and the merged header carries them
//! unchanged.
//!
//! Child stderr is relayed line by line with a `[shard i/N]` prefix, so
//! concurrent children never interleave mid-line. Heartbeat lines
//! (`EDN_HEARTBEAT` is enabled for the children unless the caller set it
//! themselves) are additionally parsed and folded into one aggregate
//! progress line covering the whole wave:
//!
//! ```text
//! [shard 2/3] edn-heartbeat shard=2/3 rows=12/40 rps=3.41 eta=8.2s cache=75%
//! edn_orchestrate: 31/120 rows (25.8%), 3/3 shard(s) reporting, 9.87 rows/s, eta 9.0s, cache 75%
//! ```

use edn_sweep::merge::merge_files;
use edn_sweep::metrics::{HeartbeatLine, HEARTBEAT_ENV, METRICS_EXTENSION, TRACE_EXTENSION};
use std::io::{BufRead, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

const USAGE: &str = "one-command shard scale-out: run an experiment binary as N shard\n\
    processes, retry failures, and merge the artifacts byte-identically\n\n\
    Usage: edn_orchestrate --jobs N --out PATH [OPTIONS] -- BINARY [ARGS...]\n\n\
    Options:\n  \
    --jobs N       shard count = concurrent child processes (required, >= 1)\n  \
    --out PATH     where the merged artifact goes (required)\n  \
    --cache DIR    pass --cache DIR to every child, so shards replay and\n                 \
    commit the shared edn_store row cache\n  \
    --fabric DIR   pass --fabric DIR to every child, so shards load the\n                 \
    compiled edn_fabric wiring database instead of each\n                 \
    re-wiring every shape at startup\n  \
    --retries K    re-launch a failed shard up to K times (default: 2),\n                 \
    each attempt with a fresh shard file\n  \
    --work-dir D   scratch directory for shard artifacts (default: a\n                 \
    directory next to --out); on success only the part\n                 \
    files this run wrote are removed, the directory too if\n                 \
    that empties it\n  \
    --keep-parts   keep the shard artifacts after merging\n  \
    --help         print this message\n\n\
    Everything after `--` is the child command line; edn_orchestrate\n\
    appends `--shard I/N --out PART [--cache DIR] [--fabric DIR]` per child, plus\n\
    `--threads cores/N` unless the command already sets --threads.\n\n\
    Child stderr is relayed with a `[shard I/N]` prefix; heartbeat lines\n\
    (EDN_HEARTBEAT is enabled for the children unless already set) are\n\
    also aggregated into one overall progress line per update.";

struct Options {
    jobs: usize,
    out: PathBuf,
    cache: Option<PathBuf>,
    fabric: Option<PathBuf>,
    retries: usize,
    work_dir: Option<PathBuf>,
    keep_parts: bool,
    command: Vec<String>,
}

fn parse_options() -> Result<Option<Options>, String> {
    let mut args = std::env::args().skip(1);
    let mut jobs = None;
    let mut out = None;
    let mut cache = None;
    let mut fabric = None;
    let mut retries = 2usize;
    let mut work_dir = None;
    let mut keep_parts = false;
    let mut command = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--jobs" => {
                let parsed: usize = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects a positive integer".to_string())?;
                if parsed == 0 {
                    return Err("--jobs expects a positive integer".to_string());
                }
                jobs = Some(parsed);
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--cache" => cache = Some(PathBuf::from(value("--cache")?)),
            "--fabric" => fabric = Some(PathBuf::from(value("--fabric")?)),
            "--retries" => {
                retries = value("--retries")?
                    .parse()
                    .map_err(|_| "--retries expects a non-negative integer".to_string())?;
            }
            "--work-dir" => work_dir = Some(PathBuf::from(value("--work-dir")?)),
            "--keep-parts" => keep_parts = true,
            "--" => {
                command.extend(args);
                break;
            }
            other => return Err(format!("unknown flag `{other}` (child args go after `--`)")),
        }
    }
    let jobs = jobs.ok_or("--jobs is required")?;
    let out = out.ok_or("--out is required")?;
    if command.is_empty() {
        return Err("no child command given (append `-- BINARY [ARGS...]`)".to_string());
    }
    Ok(Some(Options {
        jobs,
        out,
        cache,
        fabric,
        retries,
        work_dir,
        keep_parts,
        command,
    }))
}

/// One shard's lifecycle: where its current attempt writes, and how many
/// attempts it has consumed.
struct ShardRun {
    /// 1-based shard index.
    index: usize,
    attempt: usize,
    path: PathBuf,
}

/// The latest heartbeat per shard, folded into one progress line. A
/// single lock serializes both the state and the stderr writes, so
/// relayed lines from concurrent children never interleave mid-line.
struct Progress {
    latest: Vec<Option<HeartbeatLine>>,
}

impl Progress {
    fn new(jobs: usize) -> Self {
        Progress {
            latest: vec![None; jobs],
        }
    }

    /// The aggregate line across every shard heard from so far. Totals
    /// cover only reporting shards — each child knows only its own
    /// slice — so the denominator grows as shards check in.
    fn line(&self, jobs: usize) -> String {
        let reporting: Vec<&HeartbeatLine> = self.latest.iter().flatten().collect();
        let done: usize = reporting.iter().map(|h| h.done).sum();
        let total: usize = reporting.iter().map(|h| h.total).sum();
        let percent = if total == 0 {
            0.0
        } else {
            100.0 * done as f64 / total as f64
        };
        let mut line = format!(
            "edn_orchestrate: {done}/{total} rows ({percent:.1}%), {}/{jobs} shard(s) reporting",
            reporting.len()
        );
        // Aggregate throughput is the sum of the shard rates that exist
        // yet; eta divides the remaining rows by it. Both are guarded
        // against the degenerate shards a wave always starts with —
        // zero rows done, zero elapsed time (rps absent), or already
        // finished (remaining 0) — so the line never shows NaN or inf.
        let rps: f64 = reporting.iter().filter_map(|h| h.rps).sum();
        if rps > 0.0 && rps.is_finite() {
            line.push_str(&format!(", {rps:.2} rows/s"));
            let remaining = total.saturating_sub(done);
            if remaining > 0 {
                line.push_str(&format!(", eta {:.1}s", remaining as f64 / rps));
            }
        }
        // Cache effectiveness weighted by each shard's finished rows;
        // omitted entirely on uncached runs.
        let cached_rows: usize = reporting
            .iter()
            .filter(|h| h.cache_percent.is_some())
            .map(|h| h.done)
            .sum();
        if cached_rows > 0 {
            let hits: f64 = reporting
                .iter()
                .filter_map(|h| Some(h.done as f64 * f64::from(h.cache_percent?) / 100.0))
                .sum();
            line.push_str(&format!(
                ", cache {:.0}%",
                100.0 * hits / cached_rows as f64
            ));
        }
        line
    }
}

/// Relays one child's stderr, line by line, onto ours with a
/// `[shard I/N]` prefix; heartbeat lines additionally refresh the
/// aggregate progress line. Runs until the child closes its stderr.
fn relay_stderr(
    stderr: std::process::ChildStderr,
    index: usize,
    jobs: usize,
    progress: Arc<Mutex<Progress>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            let heartbeat = HeartbeatLine::parse(&line);
            let mut progress = progress.lock().expect("progress lock poisoned");
            let mut err = std::io::stderr().lock();
            writeln!(err, "[shard {index}/{jobs}] {line}").ok();
            if let Some(heartbeat) = heartbeat {
                progress.latest[index - 1] = Some(heartbeat);
                writeln!(err, "{}", progress.line(jobs)).ok();
            }
        }
    })
}

fn main() {
    let options = match parse_options() {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(message) => fail_usage(&message),
    };
    let work_dir = options.work_dir.clone().unwrap_or_else(|| {
        let mut name = options
            .out
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "out".to_string());
        name.push_str(".parts");
        options.out.with_file_name(name)
    });
    if let Err(error) = std::fs::create_dir_all(&work_dir) {
        fail_run(&format!("creating {}: {error}", work_dir.display()));
    }

    // N concurrent children each defaulting --threads to every core
    // would oversubscribe the host N-fold; unless the caller budgeted
    // threads themselves, split the cores across the jobs.
    let thread_budget = if options.command.iter().any(|arg| arg == "--threads") {
        None
    } else {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Some((cores / options.jobs).max(1))
    };

    // Wave 0 launches every shard; each following wave relaunches the
    // failures with fresh shard files until none remain or a shard has
    // exhausted its attempts.
    let total_attempts = options.retries + 1;
    let mut pending: Vec<ShardRun> = (1..=options.jobs)
        .map(|index| ShardRun {
            index,
            attempt: 0,
            path: PathBuf::new(),
        })
        .collect();
    let mut done: Vec<ShardRun> = Vec::with_capacity(options.jobs);
    let mut total_retries = 0usize;
    let mut written: Vec<PathBuf> = Vec::new();
    // Heartbeats drive the aggregate progress line; the caller's own
    // EDN_HEARTBEAT (e.g. a custom interval) wins over our default.
    let heartbeat_env = match std::env::var(HEARTBEAT_ENV) {
        Ok(value) if !value.is_empty() => None,
        _ => Some("1"),
    };
    let progress = Arc::new(Mutex::new(Progress::new(options.jobs)));
    while !pending.is_empty() {
        let mut children: Vec<(ShardRun, Child, JoinHandle<()>)> =
            Vec::with_capacity(pending.len());
        for mut shard in pending.drain(..) {
            shard.attempt += 1;
            if shard.attempt > 1 {
                total_retries += 1;
            }
            // A fresh file per attempt: a half-written artifact from a
            // crashed child must never be mistaken for shard output.
            shard.path = work_dir.join(format!(
                "part{}of{}.attempt{}.jsonl",
                shard.index, options.jobs, shard.attempt
            ));
            std::fs::remove_file(&shard.path).ok();
            written.push(shard.path.clone());
            let mut command = Command::new(&options.command[0]);
            command
                .args(&options.command[1..])
                .arg("--shard")
                .arg(format!("{}/{}", shard.index, options.jobs))
                .arg("--out")
                .arg(&shard.path)
                .stdout(Stdio::null())
                .stderr(Stdio::piped());
            if let Some(value) = heartbeat_env {
                command.env(HEARTBEAT_ENV, value);
            }
            if let Some(threads) = thread_budget {
                command.arg("--threads").arg(threads.to_string());
            }
            if let Some(cache) = &options.cache {
                command.arg("--cache").arg(cache);
            }
            if let Some(fabric) = &options.fabric {
                command.arg("--fabric").arg(fabric);
            }
            match command.spawn() {
                Ok(mut child) => {
                    let stderr = child.stderr.take().expect("child stderr was piped");
                    let relay = relay_stderr(stderr, shard.index, options.jobs, progress.clone());
                    children.push((shard, child, relay));
                }
                Err(error) => {
                    // Reap the wave before exiting: children already
                    // launched must not keep simulating (and racing a
                    // re-invocation for the same part files) after the
                    // orchestrator reports failure.
                    for (_, child, _) in &mut children {
                        child.kill().ok();
                        child.wait().ok();
                    }
                    fail_run(&format!("spawning {}: {error}", options.command[0]));
                }
            }
        }
        let mut children = children.into_iter();
        while let Some((shard, mut child, relay)) = children.next() {
            let status = match child.wait() {
                Ok(status) => status,
                Err(error) => reap_and_fail(
                    children.by_ref(),
                    &format!("waiting on shard {}/{}: {error}", shard.index, options.jobs),
                ),
            };
            // The pipe is closed once the child exits; drain whatever
            // the relay has left before judging the attempt, so failure
            // output lands above the retry/failure message.
            relay.join().ok();
            if status.success() {
                done.push(shard);
            } else if shard.attempt < total_attempts {
                eprintln!(
                    "edn_orchestrate: shard {}/{} attempt {} failed ({status}); retrying",
                    shard.index, options.jobs, shard.attempt
                );
                pending.push(shard);
            } else {
                reap_and_fail(
                    children.by_ref(),
                    &format!(
                        "shard {}/{} failed all {total_attempts} attempts (last: {status}); \
                         partial artifacts left in {}",
                        shard.index,
                        options.jobs,
                        work_dir.display()
                    ),
                );
            }
        }
    }

    // Merge in shard order; the merge layer re-validates headers, shard
    // coverage, and row coverage, so a subtly broken child still cannot
    // produce a quietly wrong artifact.
    done.sort_by_key(|shard| shard.index);
    let parts: Vec<PathBuf> = done.iter().map(|shard| shard.path.clone()).collect();
    let merged = match merge_files(&parts) {
        Ok(merged) => merged,
        Err(error) => fail_run(&format!("merging shard artifacts: {error}")),
    };
    if let Err(error) = std::fs::write(&options.out, merged.to_text()) {
        fail_run(&format!("writing {}: {error}", options.out.display()));
    }
    if !options.keep_parts {
        // Remove only what this run wrote — the work dir may be a
        // user-supplied directory holding unrelated files, which a
        // recursive delete would silently destroy. Every part drags a
        // metrics sidecar along; the directory itself goes only if
        // those files were all it held.
        for part in &written {
            std::fs::remove_file(part).ok();
            std::fs::remove_file(part.with_extension(METRICS_EXTENSION)).ok();
            std::fs::remove_file(part.with_extension(TRACE_EXTENSION)).ok();
        }
        std::fs::remove_dir(&work_dir).ok();
    }
    println!(
        "orchestrated {} shard(s), {} retr{} -> {} ({} rows)",
        options.jobs,
        total_retries,
        if total_retries == 1 { "y" } else { "ies" },
        options.out.display(),
        merged.rows.len()
    );
}

/// Kills and waits the wave's still-running siblings, then fails: on any
/// terminal error, orphans must not keep simulating (and racing a
/// re-invocation for the part files) after the orchestrator exits.
/// Killing closes each sibling's stderr pipe, so the relay threads end
/// on their own and joining cannot hang.
fn reap_and_fail(
    children: impl Iterator<Item = (ShardRun, Child, JoinHandle<()>)>,
    message: &str,
) -> ! {
    for (_, mut sibling, relay) in children {
        sibling.kill().ok();
        sibling.wait().ok();
        relay.join().ok();
    }
    fail_run(message);
}

fn fail_usage(message: &str) -> ! {
    eprintln!("edn_orchestrate: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn fail_run(message: &str) -> ! {
    eprintln!("edn_orchestrate: {message}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_sweep::stream::Shard;

    fn heartbeat(
        index: usize,
        jobs: usize,
        done: usize,
        total: usize,
        rps: Option<f64>,
    ) -> HeartbeatLine {
        HeartbeatLine {
            shard: Shard::new(index, jobs),
            done,
            total,
            rps,
            eta_seconds: None,
            cache_percent: None,
        }
    }

    #[test]
    fn empty_progress_prints_zeroes_not_nan() {
        let progress = Progress::new(3);
        let line = progress.line(3);
        assert_eq!(
            line,
            "edn_orchestrate: 0/0 rows (0.0%), 0/3 shard(s) reporting"
        );
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn zero_elapsed_shards_fold_without_rate_or_eta() {
        // A wave's first heartbeats: rows done but no rate yet (the
        // emitter withholds rps until time has elapsed). The aggregate
        // must not divide by the absent rate.
        let mut progress = Progress::new(2);
        progress.latest[0] = Some(heartbeat(0, 2, 0, 10, None));
        progress.latest[1] = Some(heartbeat(1, 2, 3, 10, None));
        let line = progress.line(2);
        assert_eq!(
            line,
            "edn_orchestrate: 3/20 rows (15.0%), 2/2 shard(s) reporting"
        );
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn zero_row_shards_join_rated_shards_cleanly() {
        // One productive shard, one degenerate (zero rows, zero rate):
        // the rate sums over what exists, eta divides remaining rows.
        let mut progress = Progress::new(2);
        progress.latest[0] = Some(heartbeat(0, 2, 5, 10, Some(2.5)));
        progress.latest[1] = Some(heartbeat(1, 2, 0, 0, None));
        let line = progress.line(2);
        assert_eq!(
            line,
            "edn_orchestrate: 5/10 rows (50.0%), 2/2 shard(s) reporting, 2.50 rows/s, eta 2.0s"
        );
    }

    #[test]
    fn finished_shards_omit_eta() {
        // Everything done: a rate still prints (it is real) but an eta
        // over zero remaining rows would be noise.
        let mut progress = Progress::new(1);
        progress.latest[0] = Some(heartbeat(0, 1, 10, 10, Some(4.0)));
        let line = progress.line(1);
        assert_eq!(
            line,
            "edn_orchestrate: 10/10 rows (100.0%), 1/1 shard(s) reporting, 4.00 rows/s"
        );
    }

    #[test]
    fn pathological_rates_never_print_non_finite_etas() {
        // A clock hiccup could hand a shard an absurd rate; folding an
        // infinite rate must degrade to omitting the rate, not print
        // `inf rows/s` or `eta NaN`.
        let mut progress = Progress::new(2);
        progress.latest[0] = Some(heartbeat(0, 2, 1, 10, Some(f64::INFINITY)));
        progress.latest[1] = Some(heartbeat(1, 2, 1, 10, Some(3.0)));
        let line = progress.line(2);
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        assert!(line.contains("shard(s) reporting"), "{line}");
    }

    #[test]
    fn cache_percent_weighted_by_done_rows() {
        let mut progress = Progress::new(2);
        let mut first = heartbeat(0, 2, 4, 10, None);
        first.cache_percent = Some(100);
        let mut second = heartbeat(1, 2, 4, 10, None);
        second.cache_percent = Some(50);
        progress.latest[0] = Some(first);
        progress.latest[1] = Some(second);
        let line = progress.line(2);
        assert!(line.ends_with("cache 75%"), "{line}");
    }
}
