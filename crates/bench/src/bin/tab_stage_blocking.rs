//! TAB-STAGEBLOCK — (extension) where the blocking happens, stage by
//! stage: measured vs the paper's per-stage model.
//!
//! Eq. 4 is a chain of per-stage rate maps ([`hyperbar_stage_rate`],
//! closed by [`crossbar_final_rate`]); the paper validates only the end
//! of the chain, the network-level `PA(r)`. The [`StageProbe`] resolves
//! the middle: counting offered/granted/blocked per stage during a
//! Monte-Carlo run exposes every intermediate rate of the chain, so each
//! link of the model is checked against measurement — not just the
//! composition. A model that was right for the wrong reason (offsetting
//! per-stage errors) would show up here and nowhere else.
//!
//! For each (network, load) point the table reports, per stage, the
//! measured input-wire request rate and blocked fraction next to the
//! model's, with the absolute blocked-fraction error. The run also
//! records one full-load [`RunMetrics`] snapshot per network into the
//! `*.metrics.jsonl` sidecar (`--out` runs), which `edn_plot --heatmap`
//! renders as a stage-utilization heatmap.
//!
//! Runs on the `edn_sweep` streaming harness: one pool task per
//! (network, load, stage) row; `--threads/--cycles/--out/--shard` as
//! everywhere.

use edn_analytic::stage::{crossbar_final_rate, hyperbar_stage_rate};
use edn_bench::{fmt_f, SweepArgs, SweepWorker};
use edn_core::{EdnParams, PriorityArbiter, RouteRequest, RoutingEngine, StageProbe};
use edn_sweep::Table;

/// Splittable per-(source, cycle) hash driving destinations and the
/// load gate — deterministic, so every row of one (network, load) point
/// observes the identical traffic.
fn mix(source: u64, cycle: u64, seed: u64) -> u64 {
    let mut x = source
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cycle.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(seed);
    x ^= x >> 27;
    x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^ (x >> 31)
}

/// Routes `cycles` of uniform traffic at offered `load` through the
/// engine with `probe` counting; destinations and the load gate are
/// deterministic in (source, cycle).
fn probe_run(
    engine: &mut RoutingEngine,
    requests: &mut Vec<RouteRequest>,
    probe: &mut StageProbe,
    load: f64,
    cycles: u64,
) {
    let params = *engine.params();
    let gate = (load * 1024.0) as u64;
    for cycle in 0..cycles {
        requests.clear();
        for source in 0..params.inputs() {
            let h = mix(source, cycle, 0xED2);
            if h % 1024 < gate {
                requests.push(RouteRequest::new(source, (h >> 10) % params.outputs()));
            }
        }
        engine.route_probed(requests, &mut PriorityArbiter::new(), probe);
    }
}

/// The analytic rate chain: the model's input-wire request rate entering
/// each stage (index 0 = stage 1) plus the final output rate.
fn model_rates(params: &EdnParams, load: f64) -> Vec<f64> {
    let mut rates = Vec::with_capacity(params.l() as usize + 2);
    let mut rate = load;
    rates.push(rate);
    for _ in 1..=params.l() {
        rate = hyperbar_stage_rate(params.a(), params.b(), params.c(), rate);
        rates.push(rate);
    }
    rates.push(crossbar_final_rate(params.c(), rate));
    rates
}

/// The model's blocked fraction at `stage` (1-based, crossbar last):
/// requests in per cycle are `wires_in * r_in`, survivors
/// `wires_out * r_out`.
fn model_blocked(params: &EdnParams, rates: &[f64], stage: u32) -> f64 {
    let r_in = rates[stage as usize - 1];
    if r_in == 0.0 {
        return 0.0;
    }
    let r_out = rates[stage as usize];
    let wires_in = params.wires_before_stage(stage) as f64;
    let wires_out = if stage <= params.l() {
        params.wires_after_stage(stage) as f64
    } else {
        params.outputs() as f64
    };
    1.0 - (wires_out * r_out) / (wires_in * r_in)
}

fn main() {
    let args = SweepArgs::parse(
        "tab_stage_blocking",
        "TAB-STAGEBLOCK: measured per-stage blocking vs the Eq. 4 rate chain.",
        1,
    );
    let cycles = args.cycles_or(200) as u64;
    println!("TAB-STAGEBLOCK: per-stage blocking, measured vs model.\n");

    let networks = [
        EdnParams::new(16, 4, 4, 3).expect("valid"), // 256 ports, 4 stages
        EdnParams::new(8, 2, 4, 4).expect("valid"),  // 64 ports, 5 stages
    ];
    let loads = [0.5, 1.0];
    // One row per (network, load, stage), flattened up front because the
    // stage count varies by network.
    let rows: Vec<(EdnParams, f64, u32)> = networks
        .iter()
        .flat_map(|&params| {
            loads
                .iter()
                .flat_map(move |&load| (1..=params.l() + 1).map(move |stage| (params, load, stage)))
        })
        .collect();

    let mut table = Table::new(
        "TAB-STAGEBLOCK: per-stage input rate and blocked fraction, measured vs Eq. 4",
        &[
            "network",
            "load",
            "stage",
            "model r_in",
            "meas r_in",
            "model blocked",
            "meas blocked",
            "|diff|",
        ],
    );
    let mut emit = args.plan_emit(&[(&table, rows.len())]);
    emit.run_rows(&mut table, SweepWorker::new, |worker, row| {
        let (params, load, stage) = rows[row];
        let (engine, requests) = worker.engine_and_requests(&params);
        let mut probe = StageProbe::new(&params);
        probe_run(engine, requests, &mut probe, load, cycles);
        let metrics = probe.snapshot();
        assert!(metrics.reconciles(), "probe ledger must balance");
        let measured = &metrics.stages[stage as usize - 1];
        let wires_in = params.wires_before_stage(stage) as f64;
        let meas_rate = measured.offered as f64 / (cycles as f64 * wires_in);
        let meas_blocked = if measured.offered == 0 {
            0.0
        } else {
            measured.blocked as f64 / measured.offered as f64
        };
        let rates = model_rates(&params, load);
        let blocked = model_blocked(&params, &rates, stage);
        vec![
            params.to_string(),
            fmt_f(load, 2),
            stage.to_string(),
            fmt_f(rates[stage as usize - 1], 4),
            fmt_f(meas_rate, 4),
            fmt_f(blocked, 4),
            fmt_f(meas_blocked, 4),
            fmt_f((blocked - meas_blocked).abs(), 4),
        ]
    });
    table.print();

    // One full-load probe snapshot per network into the metrics sidecar:
    // the stage-resolved trace `edn_plot --heatmap` renders.
    let mut worker = SweepWorker::new();
    for params in &networks {
        let (engine, requests) = worker.engine_and_requests(params);
        let mut probe = StageProbe::new(params);
        probe_run(engine, requests, &mut probe, 1.0, cycles);
        emit.record_run_metrics(&format!("{params} r=1.00"), &probe.snapshot());
    }

    println!("Reading: the rate chain tracks measurement stage by stage — blocking");
    println!("peaks at the first stage (uniform traffic arrives uncondensed), fades");
    println!("downstream as the surviving rate drops, then spikes at the final");
    println!("crossbar where capacity-c buckets narrow to single output ports —");
    println!("exactly as the model's per-stage maps predict. Link-level agreement");
    println!("means Eq. 4's accuracy is not an artifact of offsetting errors.");
    emit.finish();
}
