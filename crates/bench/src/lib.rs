//! Shared harness code for the experiment binaries in `src/bin/`.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the experiment index) and prints both the paper's
//! expectation and the model/measurement produced by this reproduction.
//! All binaries run on the `edn_sweep` executor and share its CLI
//! surface ([`SweepArgs`]: `--threads`/`--seeds`/`--cycles`/`--out`) and
//! structured emission ([`Table`] text tables plus JSON Lines rows).
//! This module re-exports that harness and holds the network-family
//! definitions shared across experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use edn_sweep::{fmt_f, fmt_opt, Emission, SweepArgs, SweepSpec, SweepWorker, Table};

use edn_core::{EdnError, EdnParams};

/// One of the paper's square network families, e.g. `EDN(8,2,4,*)`:
/// fixed hyperbar shape, growing stage count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Family {
    /// Hyperbar I/O width (`a = b * c`).
    pub io: u64,
    /// Buckets per hyperbar.
    pub b: u64,
}

impl Family {
    /// The family's capacity, `c = io / b`.
    pub fn c(&self) -> u64 {
        self.io / self.b
    }

    /// Human-readable family name, e.g. `EDN(8,2,4,*)`.
    pub fn name(&self) -> String {
        format!("EDN({},{},{},*)", self.io, self.b, self.c())
    }

    /// Parameters at stage count `l`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn at(&self, l: u32) -> Result<EdnParams, EdnError> {
        EdnParams::square_family(self.io, self.b, l)
    }

    /// All `(l, params)` in this family with port count at most
    /// `max_ports`.
    pub fn up_to(&self, max_ports: u64) -> Vec<(u32, EdnParams)> {
        let mut result = Vec::new();
        for l in 1..=63 {
            match self.at(l) {
                Ok(params) if params.inputs() <= max_ports => result.push((l, params)),
                _ => break,
            }
        }
        result
    }

    /// The family member with exactly `inputs` ports, if one exists.
    pub fn member_at(&self, inputs: u64) -> Option<EdnParams> {
        self.up_to(inputs)
            .into_iter()
            .map(|(_, params)| params)
            .find(|params| params.inputs() == inputs)
    }
}

/// The sorted, deduplicated union of port counts reached by any of the
/// `families` up to `max_ports` — the row axis of the figure binaries'
/// size tables. Each row is then a pure function of its size, which is
/// what lets `--shard` split a figure across processes.
pub fn family_sizes(families: &[Family], max_ports: u64) -> Vec<u64> {
    let mut sizes: Vec<u64> = families
        .iter()
        .flat_map(|family| family.up_to(max_ports).into_iter().map(|(_, p)| p.inputs()))
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// The `"provenance": {...}` JSON fragment every `BENCH_*.json` embeds:
/// the producing host's name (from `EDN_HOST`, the same caller-provided
/// scheme the sweep artifacts use — omitted when unset) and its core
/// count (`available_parallelism`), so in-tree throughput numbers are
/// interpretable without knowing which machine wrote them.
pub fn bench_provenance_json() -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let host = std::env::var("EDN_HOST").ok().filter(|v| !v.is_empty());
    match host {
        Some(host) => format!(
            "\"provenance\": {{\"host\": \"{}\", \"host_threads\": {threads}}}",
            host.replace('\\', "\\\\").replace('"', "\\\"")
        ),
        None => format!("\"provenance\": {{\"host_threads\": {threads}}}"),
    }
}

/// The Figure 7 families: all square EDNs built from 8-I/O hyperbars.
pub fn figure7_families() -> Vec<Family> {
    vec![
        Family { io: 8, b: 2 },
        Family { io: 8, b: 4 },
        Family { io: 8, b: 8 },
    ]
}

/// The Figure 8 families: all square EDNs built from 16-I/O hyperbars.
pub fn figure8_families() -> Vec<Family> {
    vec![
        Family { io: 16, b: 2 },
        Family { io: 16, b: 4 },
        Family { io: 16, b: 8 },
        Family { io: 16, b: 16 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_produce_square_networks() {
        for family in figure7_families().into_iter().chain(figure8_families()) {
            for (l, params) in family.up_to(100_000) {
                assert!(params.is_square(), "{} l={l}", family.name());
                assert_eq!(params.a(), family.io);
                assert_eq!(params.inputs(), params.outputs());
            }
        }
    }

    #[test]
    fn family_growth_is_monotone() {
        let family = Family { io: 8, b: 2 };
        let sizes: Vec<u64> = family
            .up_to(1 << 20)
            .iter()
            .map(|(_, p)| p.inputs())
            .collect();
        assert!(!sizes.is_empty());
        for window in sizes.windows(2) {
            assert!(window[1] > window[0]);
        }
        assert!(*sizes.last().unwrap() <= 1 << 20);
    }

    #[test]
    fn family_sizes_is_the_sorted_union() {
        let families = figure7_families();
        let sizes = family_sizes(&families, 4096);
        assert!(!sizes.is_empty());
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for family in &families {
            for (_, params) in family.up_to(4096) {
                assert!(sizes.contains(&params.inputs()), "{}", family.name());
                assert_eq!(family.member_at(params.inputs()), Some(params));
            }
        }
        assert_eq!(families[0].member_at(3), None);
    }

    #[test]
    fn harness_reexports_are_live() {
        // The sweep harness is the canonical home of Table/fmt_*; the
        // re-exports keep binary imports stable.
        let mut table = Table::new("t", &["a"]);
        table.row(vec![fmt_f(1.0, 2)]);
        assert_eq!(table.len(), 1);
        assert_eq!(fmt_opt(None, 2), "-");
    }
}
