//! Shared harness code for the experiment binaries in `src/bin/`.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the experiment index) and prints both the paper's
//! expectation and the model/measurement produced by this reproduction.
//! This module holds the plain-text table formatter and the network-family
//! definitions shared across experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use edn_core::{EdnError, EdnParams};

/// A minimal aligned-column text table (stdout-oriented; also exportable
/// as CSV).
///
/// # Examples
///
/// ```
/// use edn_bench::Table;
///
/// let mut table = Table::new("demo", &["n", "value"]);
/// table.row(vec!["1".into(), "0.5".into()]);
/// let text = table.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("value"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len()` differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table as text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` fractional digits.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats an optional float, rendering `None` as `-`.
pub fn fmt_opt(x: Option<f64>, digits: usize) -> String {
    match x {
        Some(v) => fmt_f(v, digits),
        None => "-".to_string(),
    }
}

/// One of the paper's square network families, e.g. `EDN(8,2,4,*)`:
/// fixed hyperbar shape, growing stage count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Family {
    /// Hyperbar I/O width (`a = b * c`).
    pub io: u64,
    /// Buckets per hyperbar.
    pub b: u64,
}

impl Family {
    /// The family's capacity, `c = io / b`.
    pub fn c(&self) -> u64 {
        self.io / self.b
    }

    /// Human-readable family name, e.g. `EDN(8,2,4,*)`.
    pub fn name(&self) -> String {
        format!("EDN({},{},{},*)", self.io, self.b, self.c())
    }

    /// Parameters at stage count `l`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn at(&self, l: u32) -> Result<EdnParams, EdnError> {
        EdnParams::square_family(self.io, self.b, l)
    }

    /// All `(l, params)` in this family with port count at most
    /// `max_ports`.
    pub fn up_to(&self, max_ports: u64) -> Vec<(u32, EdnParams)> {
        let mut result = Vec::new();
        for l in 1..=63 {
            match self.at(l) {
                Ok(params) if params.inputs() <= max_ports => result.push((l, params)),
                _ => break,
            }
        }
        result
    }
}

/// The Figure 7 families: all square EDNs built from 8-I/O hyperbars.
pub fn figure7_families() -> Vec<Family> {
    vec![
        Family { io: 8, b: 2 },
        Family { io: 8, b: 4 },
        Family { io: 8, b: 8 },
    ]
}

/// The Figure 8 families: all square EDNs built from 16-I/O hyperbars.
pub fn figure8_families() -> Vec<Family> {
    vec![
        Family { io: 16, b: 2 },
        Family { io: 16, b: 4 },
        Family { io: 16, b: 8 },
        Family { io: 16, b: 16 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("x", &["aa", "b"]);
        t.row(vec!["1".into(), "22222".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let text = t.render();
        assert!(text.contains("== x =="));
        let lines: Vec<&str> = text.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("x", &["n", "pa"]);
        t.row(vec!["8".into(), "0.75".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "n,pa\n8,0.75\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn families_produce_square_networks() {
        for family in figure7_families().into_iter().chain(figure8_families()) {
            for (l, params) in family.up_to(100_000) {
                assert!(params.is_square(), "{} l={l}", family.name());
                assert_eq!(params.a(), family.io);
                assert_eq!(params.inputs(), params.outputs());
            }
        }
    }

    #[test]
    fn family_growth_is_monotone() {
        let family = Family { io: 8, b: 2 };
        let sizes: Vec<u64> = family
            .up_to(1 << 20)
            .iter()
            .map(|(_, p)| p.inputs())
            .collect();
        assert!(!sizes.is_empty());
        for window in sizes.windows(2) {
            assert!(window[1] > window[0]);
        }
        assert!(*sizes.last().unwrap() <= 1 << 20);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.5444, 3), "0.544");
        assert_eq!(fmt_opt(None, 2), "-");
        assert_eq!(fmt_opt(Some(1.0), 2), "1.00");
    }
}
