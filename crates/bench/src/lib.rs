//! Shared harness code for the experiment binaries in `src/bin/`.
//!
//! Each binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the experiment index) and prints both the paper's
//! expectation and the model/measurement produced by this reproduction.
//! All binaries run on the `edn_sweep` executor and share its CLI
//! surface ([`SweepArgs`]: `--threads`/`--seeds`/`--cycles`/`--out`) and
//! structured emission ([`Table`] text tables plus JSON Lines rows).
//! This module re-exports that harness and holds the network-family
//! definitions shared across experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use edn_sweep::{fmt_f, fmt_opt, SweepArgs, SweepSpec, SweepWorker, Table};

use edn_core::{EdnError, EdnParams};

/// One of the paper's square network families, e.g. `EDN(8,2,4,*)`:
/// fixed hyperbar shape, growing stage count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Family {
    /// Hyperbar I/O width (`a = b * c`).
    pub io: u64,
    /// Buckets per hyperbar.
    pub b: u64,
}

impl Family {
    /// The family's capacity, `c = io / b`.
    pub fn c(&self) -> u64 {
        self.io / self.b
    }

    /// Human-readable family name, e.g. `EDN(8,2,4,*)`.
    pub fn name(&self) -> String {
        format!("EDN({},{},{},*)", self.io, self.b, self.c())
    }

    /// Parameters at stage count `l`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn at(&self, l: u32) -> Result<EdnParams, EdnError> {
        EdnParams::square_family(self.io, self.b, l)
    }

    /// All `(l, params)` in this family with port count at most
    /// `max_ports`.
    pub fn up_to(&self, max_ports: u64) -> Vec<(u32, EdnParams)> {
        let mut result = Vec::new();
        for l in 1..=63 {
            match self.at(l) {
                Ok(params) if params.inputs() <= max_ports => result.push((l, params)),
                _ => break,
            }
        }
        result
    }
}

/// The Figure 7 families: all square EDNs built from 8-I/O hyperbars.
pub fn figure7_families() -> Vec<Family> {
    vec![
        Family { io: 8, b: 2 },
        Family { io: 8, b: 4 },
        Family { io: 8, b: 8 },
    ]
}

/// The Figure 8 families: all square EDNs built from 16-I/O hyperbars.
pub fn figure8_families() -> Vec<Family> {
    vec![
        Family { io: 16, b: 2 },
        Family { io: 16, b: 4 },
        Family { io: 16, b: 8 },
        Family { io: 16, b: 16 },
    ]
}

/// Evaluates `f` at every member of every family up to `max_ports` on
/// the work-stealing pool, returning one `(inputs, value)` series per
/// family, sizes ascending — the shared scaffolding of the figure
/// binaries' family sweeps (deep members cost more than shallow ones,
/// which is exactly the imbalance stealing absorbs).
pub fn evaluate_families<T, F>(
    threads: usize,
    families: &[Family],
    max_ports: u64,
    f: F,
) -> Vec<Vec<(u64, T)>>
where
    T: Send,
    F: Fn(&EdnParams) -> T + Sync,
{
    let points: Vec<(usize, EdnParams)> = families
        .iter()
        .enumerate()
        .flat_map(|(index, family)| {
            family
                .up_to(max_ports)
                .into_iter()
                .map(move |(_, params)| (index, params))
        })
        .collect();
    let evaluated = edn_sweep::map_slice_with(
        threads,
        &points,
        || (),
        |(), &(index, params)| (index, params.inputs(), f(&params)),
    );
    let mut series: Vec<Vec<(u64, T)>> = families.iter().map(|_| Vec::new()).collect();
    for (index, inputs, value) in evaluated {
        series[index].push((inputs, value));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_produce_square_networks() {
        for family in figure7_families().into_iter().chain(figure8_families()) {
            for (l, params) in family.up_to(100_000) {
                assert!(params.is_square(), "{} l={l}", family.name());
                assert_eq!(params.a(), family.io);
                assert_eq!(params.inputs(), params.outputs());
            }
        }
    }

    #[test]
    fn family_growth_is_monotone() {
        let family = Family { io: 8, b: 2 };
        let sizes: Vec<u64> = family
            .up_to(1 << 20)
            .iter()
            .map(|(_, p)| p.inputs())
            .collect();
        assert!(!sizes.is_empty());
        for window in sizes.windows(2) {
            assert!(window[1] > window[0]);
        }
        assert!(*sizes.last().unwrap() <= 1 << 20);
    }

    #[test]
    fn evaluate_families_groups_by_family_in_size_order() {
        let families = figure7_families();
        let series = evaluate_families(2, &families, 4096, |p| p.l());
        assert_eq!(series.len(), families.len());
        for (family, family_series) in families.iter().zip(&series) {
            let expected: Vec<(u64, u32)> = family
                .up_to(4096)
                .into_iter()
                .map(|(l, p)| (p.inputs(), l))
                .collect();
            assert_eq!(family_series, &expected, "{}", family.name());
        }
    }

    #[test]
    fn harness_reexports_are_live() {
        // The sweep harness is the canonical home of Table/fmt_*; the
        // re-exports keep binary imports stable.
        let mut table = Table::new("t", &["a"]);
        table.row(vec![fmt_f(1.0, 2)]);
        assert_eq!(table.len(), 1);
        assert_eq!(fmt_opt(None, 2), "-");
    }
}
