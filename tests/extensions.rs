//! Integration tests for the extension features: fault tolerance,
//! scheduling, and design solvers, exercised across crates.

use edn::analytic::design::{cheapest_meeting, deepest_at_acceptance};
use edn::analytic::pa::probability_of_acceptance;
use edn::core::{route_batch_faulty, route_one_with_faults, FaultRouting, FaultSet};
use edn::sim::{ArbiterKind, RaEdnSystem, Schedule};
use edn::traffic::Permutation;
use edn::{EdnParams, EdnTopology, PriorityArbiter, RouteRequest};

#[test]
fn multipath_degrades_gracefully_delta_does_not() {
    // At equal ports and equal fault rate, the EDN's delivered fraction
    // falls smoothly while the delta's collapses with severed pairs.
    let edn = EdnTopology::new(EdnParams::new(16, 4, 4, 3).unwrap());
    let delta = EdnTopology::new(EdnParams::new(4, 4, 1, 4).unwrap());
    let requests: Vec<RouteRequest> = (0..256u64)
        .map(|s| RouteRequest::new(s, (s * 29 + 5) % 256))
        .collect();
    let healthy_edn = route_batch_faulty(
        &edn,
        &requests,
        &FaultSet::none(edn.params()),
        &mut PriorityArbiter::new(),
    )
    .delivered_count() as f64;
    let healthy_delta = route_batch_faulty(
        &delta,
        &requests,
        &FaultSet::none(delta.params()),
        &mut PriorityArbiter::new(),
    )
    .delivered_count() as f64;

    let faulty_edn = route_batch_faulty(
        &edn,
        &requests,
        &FaultSet::random(edn.params(), 0.1, 3),
        &mut PriorityArbiter::new(),
    )
    .delivered_count() as f64;
    let faulty_delta = route_batch_faulty(
        &delta,
        &requests,
        &FaultSet::random(delta.params(), 0.1, 3),
        &mut PriorityArbiter::new(),
    )
    .delivered_count() as f64;

    let edn_retained = faulty_edn / healthy_edn;
    let delta_retained = faulty_delta / healthy_delta;
    assert!(
        edn_retained > delta_retained,
        "EDN retained {edn_retained:.3}, delta {delta_retained:.3}"
    );
}

#[test]
fn fault_connectivity_matches_batch_routing_reachability() {
    // If route_one_with_faults says a pair is severed, a single-request
    // batch must also fail, and vice versa.
    let topology = EdnTopology::new(EdnParams::new(8, 4, 2, 3).unwrap());
    let faults = FaultSet::random(topology.params(), 0.15, 77);
    for i in 0..200u64 {
        let source = (i * 37) % topology.params().inputs();
        let tag = (i * 53 + 11) % topology.params().outputs();
        let connected = matches!(
            route_one_with_faults(&topology, &faults, source, tag).unwrap(),
            FaultRouting::Delivered(_)
        );
        let outcome = route_batch_faulty(
            &topology,
            &[RouteRequest::new(source, tag)],
            &faults,
            &mut PriorityArbiter::new(),
        );
        assert_eq!(
            connected,
            outcome.delivered_count() == 1,
            "S={source} D={tag}: connectivity and routing disagree"
        );
    }
}

#[test]
fn greedy_schedule_beats_random_on_the_maspar_shape() {
    let mut random = RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, 42).unwrap();
    let mut greedy = RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, 42).unwrap();
    let (t_random, _) = random.measure_mean_cycles_scheduled(3, Schedule::Random);
    let (t_greedy, _) = greedy.measure_mean_cycles_scheduled(3, Schedule::GreedyDistinct);
    assert!(
        t_greedy < t_random,
        "greedy {t_greedy} should beat random {t_random} at 16K PEs"
    );
}

#[test]
fn schedules_agree_on_total_delivery() {
    let n = 4 * 2 * 2 * 2; // RA-EDN(2,2,2,2): 8 ports? compute: p = 2^2*2 = 8, q = 2 -> 16 PEs
    let mut system = RaEdnSystem::new(2, 2, 2, 2, ArbiterKind::Random, 5).unwrap();
    assert_eq!(system.processors(), 16);
    let perm = Permutation::random(
        system.processors(),
        &mut rand::rngs::mock::StepRng::new(7, 11),
    );
    let _ = n;
    for schedule in [Schedule::Random, Schedule::GreedyDistinct] {
        let run = system.route_permutation_scheduled(&perm, schedule);
        assert_eq!(
            run.delivered_per_cycle.iter().sum::<u64>(),
            16,
            "{schedule:?}"
        );
    }
}

#[test]
fn design_solver_agrees_with_direct_model_evaluation() {
    let point = deepest_at_acceptance(8, 2, 0.45)
        .unwrap()
        .expect("feasible");
    assert!((point.pa_full_load - probability_of_acceptance(&point.params, 1.0)).abs() < 1e-12);
    // The paper's performance/cost argument: among candidates at >= 1024
    // ports and PA >= 0.4, the cheapest is never the crossbar-heaviest
    // family (io = max) — larger switches cost quadratically.
    let best = cheapest_meeting(16, 1024, 0.4).expect("feasible");
    assert!(best.ports >= 1024);
    assert!(best.pa_full_load >= 0.4);
}
