//! Cross-crate validation: the cycle-level simulator must reproduce the
//! analytic models within their approximation error.

use edn::analytic::mimd::resubmission_fixed_point;
use edn::analytic::pa::probability_of_acceptance;
use edn::analytic::permutation::permutation_pa;
use edn::sim::{
    estimate_pa, estimate_pa_permutation, ArbiterKind, MimdSystem, RaEdnSystem, ResubmitPolicy,
};
use edn::EdnParams;

#[test]
fn uniform_pa_across_families_and_rates() {
    for (a, b, c, l) in [
        (16u64, 4u64, 4u64, 2u32),
        (8, 2, 4, 3),
        (8, 8, 1, 3),
        (16, 2, 8, 2),
    ] {
        let params = EdnParams::new(a, b, c, l).unwrap();
        for rate in [0.5, 1.0] {
            let estimate = estimate_pa(&params, rate, ArbiterKind::Random, 120, 9000 + l as u64);
            let model = probability_of_acceptance(&params, rate);
            assert!(
                estimate.is_consistent_with(model, 0.035),
                "{params} r={rate}: sim {} +- {} vs model {model}",
                estimate.mean,
                estimate.std_error
            );
        }
    }
}

#[test]
fn permutation_pa_matches_lemma2_model() {
    for (a, b, c, l) in [(16u64, 4u64, 4u64, 2u32), (8, 4, 2, 3)] {
        let params = EdnParams::new(a, b, c, l).unwrap();
        let estimate = estimate_pa_permutation(&params, 1.0, ArbiterKind::Random, 120, 31);
        let model = permutation_pa(&params, 1.0);
        assert!(
            estimate.is_consistent_with(model, 0.04),
            "{params}: sim {} vs model {model}",
            estimate.mean
        );
    }
}

#[test]
fn arbitration_policy_does_not_change_throughput() {
    // The analytic model never says *which* requests win; total
    // acceptance must be policy-independent (they accept the same count,
    // just different winners).
    let params = EdnParams::new(16, 4, 4, 2).unwrap();
    let priority = estimate_pa(&params, 1.0, ArbiterKind::Priority, 100, 5);
    let random = estimate_pa(&params, 1.0, ArbiterKind::Random, 100, 5);
    let round_robin = estimate_pa(&params, 1.0, ArbiterKind::RoundRobin, 100, 5);
    assert!((priority.mean - random.mean).abs() < 0.02);
    assert!((priority.mean - round_robin.mean).abs() < 0.02);
}

#[test]
fn mimd_simulation_reaches_markov_steady_state() {
    let params = EdnParams::new(16, 4, 4, 2).unwrap(); // 64 processors
    let rate = 0.6;
    let model = resubmission_fixed_point(&params, rate, 1e-12, 100_000);
    let mut system = MimdSystem::new(
        params,
        rate,
        ArbiterKind::Random,
        ResubmitPolicy::Redraw,
        404,
    )
    .unwrap();
    let report = system.run(400, 800);
    assert!(
        (report.acceptance - model.pa_prime).abs() < 0.05,
        "PA' sim {} vs model {}",
        report.acceptance,
        model.pa_prime
    );
    assert!(
        (report.waiting_fraction - model.q_waiting).abs() < 0.05,
        "qW sim {} vs model {}",
        report.waiting_fraction,
        model.q_waiting
    );
}

#[test]
fn ra_edn_simulation_bounds_analytic_estimate() {
    // Small MasPar sibling: RA-EDN(4,2,2,8) = 32 clusters of 8 PEs.
    let mut system = RaEdnSystem::new(4, 2, 2, 8, ArbiterKind::Random, 77).unwrap();
    let (mean, _) = system.measure_mean_cycles(8);
    let model = edn::analytic::simd::RaEdnModel::new(4, 2, 2, 8)
        .unwrap()
        .expected_permutation_cycles();
    // The analytic estimate is optimistic but must be the right scale.
    assert!(
        mean >= model.total_cycles * 0.8 && mean <= model.total_cycles * 1.6,
        "sim {mean} vs model {}",
        model.total_cycles
    );
}

#[test]
fn monte_carlo_error_shrinks_with_cycles() {
    let params = EdnParams::new(16, 4, 4, 2).unwrap();
    let short = estimate_pa(&params, 1.0, ArbiterKind::Random, 20, 8);
    let long = estimate_pa(&params, 1.0, ArbiterKind::Random, 320, 8);
    assert!(long.std_error < short.std_error);
}
