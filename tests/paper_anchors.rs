//! Integration tests pinning every numeric anchor the paper states,
//! end-to-end across the workspace crates.

use edn::analytic::mimd::resubmission_fixed_point;
use edn::analytic::pa::{probability_of_acceptance, stage_rates};
use edn::analytic::simd::RaEdnModel;
use edn::core::cost::{
    crosspoint_cost, crosspoint_cost_closed_form, wire_cost, wire_cost_closed_form,
};
use edn::core::{route_batch, route_batch_reordered, NetworkClass};
use edn::sim::{ArbiterKind, MimdSystem, RaEdnSystem, ResubmitPolicy};
use edn::{EdnParams, EdnTopology, Hyperbar, PriorityArbiter, RetirementOrder, RouteRequest};

/// Section 5.1: "In this system PA(1) = .544."
#[test]
fn section5_pa_anchor() {
    let params = EdnParams::ra_edn(16, 4, 2).unwrap();
    let pa = probability_of_acceptance(&params, 1.0);
    assert!((pa - 0.544).abs() < 1e-3, "PA(1) = {pa}");
}

/// Section 5.1: "Solving the recursion above gives a J of 5. Thus the
/// expected time to route an average permutation will be about
/// 16/.544 + 5 = 34.41 network cycles."
#[test]
fn section5_timing_anchor() {
    let model = RaEdnModel::new(16, 4, 2, 16).unwrap();
    let timing = model.expected_permutation_cycles();
    assert_eq!(timing.tail_cycles, 5);
    assert!(
        (timing.total_cycles - 34.41).abs() < 0.05,
        "E = {}",
        timing.total_cycles
    );
}

/// Conclusion: "The router network of the MasPar MP-1 computer with 16K
/// PEs can [be] shown to be logically equivalent to the RA-EDN(16,4,2,16)."
#[test]
fn maspar_router_shape() {
    let model = RaEdnModel::new(16, 4, 2, 16).unwrap();
    assert_eq!(model.processors(), 16 * 1024);
    assert_eq!(model.ports(), 1024);
    assert_eq!(*model.params(), EdnParams::new(64, 16, 4, 2).unwrap());
}

/// Figure 2: H(8 -> 4 x 2) with digits [3,2,3,1,2,2,0,3] discards 5 and 7.
#[test]
fn figure2_rejections() {
    let switch = Hyperbar::new(8, 4, 2).unwrap();
    let requests: Vec<Option<u64>> = [3u64, 2, 3, 1, 2, 2, 0, 3]
        .iter()
        .map(|&d| Some(d))
        .collect();
    let outcome = switch
        .route(&requests, &mut PriorityArbiter::new())
        .unwrap();
    let rejected: Vec<usize> = outcome.rejected_inputs(&requests).collect();
    assert_eq!(rejected, [5, 7]);
}

/// Section 2: "An EDN(a,b,1,1) is an a x b crossbar. An EDN(a,b,1,l) is an
/// a^l x b^l delta network."
#[test]
fn degenerate_classes() {
    assert_eq!(
        EdnParams::new(8, 4, 1, 1).unwrap().class(),
        NetworkClass::Crossbar
    );
    let delta = EdnParams::new(8, 4, 1, 3).unwrap();
    assert_eq!(delta.class(), NetworkClass::Delta);
    assert_eq!(delta.inputs(), 8 * 8 * 8);
    assert_eq!(delta.outputs(), 4 * 4 * 4);
    // "In both of these cases ... there is a unique path from any input to
    // any output."
    assert_eq!(delta.path_count(), 1);
}

/// Figures 5-6: the identity permutation fails on the unmodified
/// EDN(64,16,4,2) (64 of 1024 in one pass) and routes completely after
/// the Corollary-2 modification.
#[test]
fn figures5_6_identity() {
    let params = EdnParams::new(64, 16, 4, 2).unwrap();
    let topology = EdnTopology::new(params);
    let identity: Vec<RouteRequest> = (0..params.inputs())
        .map(|s| RouteRequest::new(s, s))
        .collect();

    let plain = route_batch(&topology, &identity, &mut PriorityArbiter::new());
    assert_eq!(plain.delivered_count(), 64);

    let order = RetirementOrder::rotate_left(params.output_bits(), params.log2_b()).unwrap();
    let fixed = route_batch_reordered(&topology, &identity, &order, &mut PriorityArbiter::new());
    assert_eq!(fixed.delivered_count(), 1024);
    assert!(fixed.delivered().iter().all(|&(s, o)| s == o));
}

/// Section 3.1 (Eqs. 2-3): closed forms equal the stage-by-stage sums for
/// both the geometric (a/c != b) and square (a/c == b) cases.
#[test]
fn cost_equations() {
    for (a, b, c, l) in [
        (8u64, 2u64, 4u64, 3u32),
        (16, 4, 4, 4),
        (64, 16, 4, 2),
        (8, 4, 4, 3),
        (16, 2, 4, 3),
        (8, 8, 1, 5),
    ] {
        let p = EdnParams::new(a, b, c, l).unwrap();
        assert_eq!(crosspoint_cost(&p), crosspoint_cost_closed_form(&p), "{p}");
        assert_eq!(wire_cost(&p), wire_cost_closed_form(&p), "{p}");
    }
}

/// Section 2 structure: an EDN(a,b,c,l) has (a/c)^l c inputs, b^l c
/// outputs, (a/c)^(l-i) b^(i-1) hyperbars in stage i, and b^l crossbars.
#[test]
fn structural_counts() {
    let p = EdnParams::new(16, 4, 4, 2).unwrap();
    assert_eq!(p.inputs(), 64);
    assert_eq!(p.outputs(), 64);
    assert_eq!(p.hyperbars_in_stage(1), 4);
    assert_eq!(p.hyperbars_in_stage(2), 4);
    assert_eq!(p.crossbar_count(), 16);
    // Figure 4: "All thick lines consist of 4 parallel wires."
    assert_eq!(p.wires_after_stage(1), 64);
}

/// Stage-rate chain for the Section 5 example, independently derived:
/// r1 = 0.810853, r2 = 0.712516, r_final = 0.543738.
#[test]
fn section5_stage_chain() {
    let rates = stage_rates(&EdnParams::new(64, 16, 4, 2).unwrap(), 1.0);
    assert!((rates[1] - 0.810853).abs() < 1e-6);
    assert!((rates[2] - 0.712516).abs() < 1e-6);
    assert!((rates[3] - 0.543738).abs() < 1e-6);
}

/// Section 5.1 measured end-to-end through the resident session path:
/// the mean completion time of a random permutation on the MasPar-shaped
/// `RA-EDN(16,4,2,16)` stays in the band of the paper's ~34.4-cycle
/// prediction. `route_permutation_scheduled` is one cluster-session call
/// per run since the session refactor, so this anchors the new path
/// against the paper, not just against the legacy loop.
#[test]
fn section5_session_completion_anchor() {
    let mut system = RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, 0x34A4).unwrap();
    assert_eq!(system.processors(), 16384);
    let (mean, _se) = system.measure_mean_cycles(4);
    let predicted = RaEdnModel::new(16, 4, 2, 16)
        .unwrap()
        .expected_permutation_cycles()
        .total_cycles;
    assert!(
        (predicted - 34.41).abs() < 0.05,
        "model drifted: {predicted}"
    );
    assert!(
        (mean - predicted).abs() < 10.0,
        "session path measured {mean} cycles vs paper's ~{predicted}"
    );
}

/// The TAB-SIMVAL agreement, asserted: the Section 4 resubmission fixed
/// point and the session-backed `MimdSystem::run` (one `RouteSession`
/// call per run) agree on acceptance, effective rate, and waiting
/// fraction under the model's own redraw assumption.
#[test]
fn tab_sim_vs_analytic_fixed_point_agreement() {
    let params = EdnParams::new(16, 4, 4, 3).unwrap(); // 256 processors
    for rate in [0.5, 1.0] {
        let model = resubmission_fixed_point(&params, rate, 1e-12, 100_000);
        let mut system = MimdSystem::new(
            params,
            rate,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            0x51D5,
        )
        .unwrap();
        let report = system.run(300, 600);
        assert!(
            (report.acceptance - model.pa_prime).abs() < 0.04,
            "r={rate}: measured PA' {} vs fixed point {}",
            report.acceptance,
            model.pa_prime
        );
        assert!(
            (report.effective_rate - model.effective_rate).abs() < 0.04,
            "r={rate}: measured r' {} vs fixed point {}",
            report.effective_rate,
            model.effective_rate
        );
        assert!(
            (report.waiting_fraction - model.q_waiting).abs() < 0.05,
            "r={rate}: measured qW {} vs fixed point {}",
            report.waiting_fraction,
            model.q_waiting
        );
    }
}

/// Theorem 2: c^l paths, all arriving at the destination.
#[test]
fn theorem2_multipath() {
    let params = EdnParams::new(16, 4, 4, 2).unwrap();
    let topology = EdnTopology::new(params);
    let paths = topology.enumerate_paths(11, 37, 1 << 20).unwrap();
    assert_eq!(paths.len() as u128, params.path_count());
    assert!(paths.iter().all(|p| p.output() == 37));
}
