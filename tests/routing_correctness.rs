//! Cross-crate routing correctness: the wired fabric versus the paper's
//! closed forms, over randomized workloads.

use edn::traffic::Permutation;
use edn::{
    route_batch, route_batch_reordered, EdnParams, EdnTopology, PriorityArbiter, RandomArbiter,
    RetirementOrder, RouteRequest,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn networks() -> Vec<EdnParams> {
    vec![
        EdnParams::new(16, 4, 4, 2).unwrap(),
        EdnParams::new(8, 4, 2, 3).unwrap(),
        EdnParams::new(64, 16, 4, 2).unwrap(),
        EdnParams::new(8, 8, 1, 2).unwrap(),  // delta
        EdnParams::new(8, 4, 4, 2).unwrap(),  // expansion (rectangular)
        EdnParams::new(16, 2, 4, 3).unwrap(), // concentration (rectangular)
    ]
}

#[test]
fn fabric_trace_equals_lemma1_closed_form_randomized() {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    for params in networks() {
        let topology = EdnTopology::new(params);
        for _ in 0..100 {
            let source = rng.gen_range(0..params.inputs());
            let tag = rng.gen_range(0..params.outputs());
            let choices: Vec<u64> = (0..params.l())
                .map(|_| rng.gen_range(0..params.c()))
                .collect();
            let trace = topology.trace_path(source, tag, &choices).unwrap();
            assert_eq!(trace.output(), tag, "{params}: trace must deliver");
            for stage in 1..=params.l() {
                let closed = topology
                    .lemma1_line_after_stage(source, tag, stage, choices[(stage - 1) as usize])
                    .unwrap();
                assert_eq!(
                    trace.exit_lines()[(stage - 1) as usize],
                    closed,
                    "{params} S={source} D={tag} stage={stage}"
                );
            }
        }
    }
}

#[test]
fn every_delivered_message_lands_on_its_tag() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for params in networks() {
        let topology = EdnTopology::new(params);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(1));
        for _ in 0..10 {
            let mut requests: Vec<RouteRequest> = Vec::new();
            for s in 0..params.inputs() {
                if rng.gen_bool(0.7) {
                    requests.push(RouteRequest::new(s, rng.gen_range(0..params.outputs())));
                }
            }
            let outcome = route_batch(&topology, &requests, &mut arbiter);
            let lookup: std::collections::HashMap<u64, u64> =
                requests.iter().map(|r| (r.source, r.tag)).collect();
            for &(source, output) in outcome.delivered() {
                assert_eq!(output, lookup[&source], "{params}");
            }
            assert_eq!(
                outcome.delivered_count() + outcome.blocked().len(),
                outcome.offered(),
                "{params}: conservation"
            );
        }
    }
}

#[test]
fn no_output_is_delivered_twice_in_a_cycle() {
    let mut rng = StdRng::seed_from_u64(0xD0);
    for params in networks() {
        let topology = EdnTopology::new(params);
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
            .collect();
        let outcome = route_batch(&topology, &requests, &mut PriorityArbiter::new());
        let mut outputs: Vec<u64> = outcome.delivered().iter().map(|&(_, o)| o).collect();
        let before = outputs.len();
        outputs.sort_unstable();
        outputs.dedup();
        assert_eq!(outputs.len(), before, "{params}: double delivery");
    }
}

#[test]
fn corollary2_reordering_preserves_arbitrary_permutations() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for params in networks().into_iter().filter(|p| p.is_square()) {
        let topology = EdnTopology::new(params);
        let bits = params.output_bits();
        for rotation in [1u32, params.log2_b(), bits - 1] {
            let order = RetirementOrder::rotate_left(bits, rotation).unwrap();
            let perm = Permutation::random(params.inputs(), &mut rng);
            let outcome = route_batch_reordered(
                &topology,
                &perm.to_requests(),
                &order,
                &mut PriorityArbiter::new(),
            );
            for &(source, output) in outcome.delivered() {
                assert_eq!(output, perm.apply(source), "{params} rot={rotation}");
            }
        }
    }
}

#[test]
fn multipass_routing_eventually_completes_any_permutation() {
    let mut rng = StdRng::seed_from_u64(0x9A55);
    for params in networks().into_iter().filter(|p| p.is_square()) {
        let topology = EdnTopology::new(params);
        let perm = Permutation::random(params.inputs(), &mut rng);
        let mut remaining = perm.to_requests();
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(3));
        let mut passes = 0u32;
        while !remaining.is_empty() {
            passes += 1;
            assert!(passes <= 10_000, "{params}: livelock");
            let outcome = route_batch(&topology, &remaining, &mut arbiter);
            let delivered: std::collections::HashSet<u64> =
                outcome.delivered().iter().map(|&(s, _)| s).collect();
            assert!(
                !delivered.is_empty() || remaining.is_empty(),
                "{params}: a non-empty batch always delivers at least one message"
            );
            remaining.retain(|r| !delivered.contains(&r.source));
        }
    }
}

#[test]
fn structured_permutations_route_fully_on_crossbars_only() {
    // A crossbar (c=1, l=1) routes every permutation in one pass; deeper
    // networks may or may not, but never deliver to a wrong port.
    let xbar = EdnParams::crossbar(64).unwrap();
    let topology = EdnTopology::new(xbar);
    for perm in [
        Permutation::identity(64),
        Permutation::bit_reversal(64).unwrap(),
        Permutation::perfect_shuffle(64).unwrap(),
        Permutation::transpose(64).unwrap(),
        Permutation::reversal(64),
    ] {
        let outcome = route_batch(&topology, &perm.to_requests(), &mut PriorityArbiter::new());
        assert_eq!(outcome.delivered_count(), 64);
    }
}
