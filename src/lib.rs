//! Facade crate for the Expanded Delta Network (EDN) reproduction.
//!
//! This crate re-exports the whole workspace under one roof so that
//! examples and downstream users can write `use edn::...` without tracking
//! the individual sub-crates:
//!
//! * [`core`] — topology, digit-controlled routing, and cost model
//!   (`edn-core`).
//! * [`analytic`] — the paper's probabilistic performance models
//!   (`edn-analytic`).
//! * [`sim`] — the cycle-level circuit-switched simulator (`edn-sim`).
//! * [`traffic`] — workload generators (`edn-traffic`).
//! * [`sweep`] — the work-stealing sweep executor and structured
//!   emission behind every experiment binary (`edn-sweep`).
//! * [`store`] — the content-addressed row cache that lets re-runs and
//!   extended grids replay already-measured cells (`edn-store`).
//!
//! The most common types are additionally re-exported at the crate root.
//!
//! # Examples
//!
//! ```
//! use edn::{EdnParams, EdnTopology};
//!
//! # fn main() -> Result<(), edn::core::EdnError> {
//! // The MasPar MP-1 router shape analyzed in the paper's Section 5.
//! let params = EdnParams::ra_edn(16, 4, 2)?;
//! let topology = EdnTopology::new(params);
//! assert_eq!(topology.params().inputs(), 1024);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use edn_analytic as analytic;
pub use edn_core as core;
pub use edn_sim as sim;
pub use edn_store as store;
pub use edn_sweep as sweep;
pub use edn_traffic as traffic;

pub use edn_core::{
    route_batch, route_batch_reordered, BatchOutcome, BatchOutcomeView, DestTag, EdnError,
    EdnParams, EdnTopology, Gamma, Hyperbar, PriorityArbiter, RandomArbiter, RetirementOrder,
    RouteRequest, RoutingEngine, SourceAddress,
};
