//! Network design exploration: pick the right EDN for a machine.
//!
//! The paper's central trade-off is performance (probability of
//! acceptance) against hardware (crosspoints and wires). Given a target
//! port count, this example sweeps every square EDN family buildable from
//! 8- and 16-wide hyperbars — plus the delta network and crossbar limits —
//! and prints the cost/performance frontier a machine architect would
//! study.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example network_design_explorer [ports]
//! ```
//!
//! `ports` defaults to 4096 and is rounded to the nearest buildable size
//! per family.

use edn::analytic::pa::{crossbar_pa, probability_of_acceptance};
use edn::core::cost::{crossbar_crosspoints, crossbar_wires, crosspoint_cost, wire_cost};
use edn::core::EdnError;
use edn::EdnParams;

struct Candidate {
    name: String,
    ports: u64,
    pa: f64,
    crosspoints: u128,
    wires: u128,
}

fn main() -> Result<(), EdnError> {
    let target: u64 = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(4096);
    println!("design target: ~{target} ports\n");

    let mut candidates: Vec<Candidate> = Vec::new();

    // Square EDN families from 8- and 16-I/O hyperbars (the paper's
    // Figures 7-8), each at its largest size not exceeding the target.
    for (io, b) in [
        (8u64, 2u64),
        (8, 4),
        (8, 8),
        (16, 2),
        (16, 4),
        (16, 8),
        (16, 16),
    ] {
        let mut best: Option<EdnParams> = None;
        for l in 1..=40 {
            match EdnParams::square_family(io, b, l) {
                Ok(p) if p.inputs() <= target => best = Some(p),
                _ => break,
            }
        }
        if let Some(p) = best {
            candidates.push(Candidate {
                name: p.to_string(),
                ports: p.inputs(),
                pa: probability_of_acceptance(&p, 1.0),
                crosspoints: crosspoint_cost(&p),
                wires: wire_cost(&p),
            });
        }
    }

    // The crossbar limit at the exact target.
    candidates.push(Candidate {
        name: "crossbar".to_string(),
        ports: target,
        pa: crossbar_pa(target, 1.0),
        crosspoints: crossbar_crosspoints(target, target),
        wires: crossbar_wires(target, target),
    });

    candidates.sort_by(|x, y| y.pa.total_cmp(&x.pa));

    println!(
        "{:<16} {:>7} {:>8} {:>12} {:>9} {:>16}",
        "network", "ports", "PA(1)", "crosspoints", "wires", "PA per Mxpoint"
    );
    for c in &candidates {
        println!(
            "{:<16} {:>7} {:>8.4} {:>12} {:>9} {:>16.2}",
            c.name,
            c.ports,
            c.pa,
            c.crosspoints,
            c.wires,
            c.pa / (c.crosspoints as f64 / 1.0e6)
        );
    }

    // The frontier argument of the paper's conclusion.
    let crossbar = candidates
        .iter()
        .find(|c| c.name == "crossbar")
        .expect("pushed above");
    let best_edn = candidates
        .iter()
        .filter(|c| c.name != "crossbar")
        .max_by(|x, y| x.pa.total_cmp(&y.pa))
        .expect("families are non-empty");
    println!(
        "\nbest EDN ({}) reaches {:.0}% of crossbar acceptance at {:.1}% of its crosspoints",
        best_edn.name,
        100.0 * best_edn.pa / crossbar.pa,
        100.0 * best_edn.crosspoints as f64 / crossbar.crosspoints as f64
    );
    Ok(())
}
