//! The MasPar MP-1 router scenario (paper, Section 5 and Conclusions).
//!
//! "The router network of the MasPar MP-1 computer with 16K PEs can [be]
//! shown to be logically equivalent to the RA-EDN(16,4,2,16)": 1024
//! clusters of 16 processing elements, each cluster sharing one port of a
//! square EDN(64,16,4,2). This example routes a full 16K-message random
//! permutation through the simulated router and compares the completion
//! time with the paper's 34.41-cycle estimate.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example maspar_router
//! ```

use edn::analytic::simd::RaEdnModel;
use edn::core::EdnError;
use edn::sim::{ArbiterKind, RaEdnSystem};

fn main() -> Result<(), EdnError> {
    // The analytic model of Section 5.1.
    let model = RaEdnModel::new(16, 4, 2, 16)?;
    let timing = model.expected_permutation_cycles();
    println!("MasPar MP-1 router = {model} on {}", model.params());
    println!("  clusters (ports) p = {}", model.ports());
    println!("  processing elements = {}", model.processors());
    println!("\nanalytic model (paper Section 5.1):");
    println!("  PA(1)      = {:.4}   (paper: 0.544)", timing.pa_full_load);
    println!("  bulk phase = q/PA(1) = {:.2} cycles", timing.bulk_cycles);
    println!(
        "  tail phase = J = {} cycles (paper: 5)",
        timing.tail_cycles
    );
    println!("  E[cycles]  = {:.2}   (paper: 34.41)", timing.total_cycles);

    // The cycle-level simulation of the same machine.
    let mut router = RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, 0x004D_5031)?;
    println!("\nsimulating 5 random 16K-PE permutations:");
    for trial in 1..=5 {
        let run = router.route_random_permutation();
        println!(
            "  trial {trial}: {} cycles, peak {} msgs/cycle, mean {:.1} msgs/cycle",
            run.cycles,
            run.delivered_per_cycle.iter().max().expect("non-empty run"),
            run.mean_throughput()
        );
    }
    println!("\nThe measured times sit a few cycles above the analytic expectation —");
    println!("the model's uniform-and-independent header assumption is slightly");
    println!("optimistic for a true permutation workload, exactly as Section 5 notes");
    println!("(\"the larger q is, the more closely it approximates a uniform and");
    println!("independent distribution\").");
    Ok(())
}
