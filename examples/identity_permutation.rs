//! Corollary 2 in action: making `EDN(64,16,4,2)` route the identity.
//!
//! The paper's Figures 5-6 story: the identity permutation is the *worst*
//! workload for this network — all 64 sources of each first-stage
//! hyperbar address the same capacity-4 bucket, so 94% of messages die at
//! stage 1. Retiring the tag bits in a different order (rotate left by
//! log2(b) = 4) and compensating with the inverse permutation at the
//! output turns the same identity into a conflict-free workload.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example identity_permutation
//! ```

use edn::core::EdnError;
use edn::core::{route_batch, route_batch_reordered};
use edn::{EdnParams, EdnTopology, PriorityArbiter, RetirementOrder, RouteRequest};

fn main() -> Result<(), EdnError> {
    let params = EdnParams::new(64, 16, 4, 2)?;
    let topology = EdnTopology::new(params);
    let identity: Vec<RouteRequest> = (0..params.inputs())
        .map(|s| RouteRequest::new(s, s))
        .collect();

    // Unmodified network (Figure 5).
    let outcome = route_batch(&topology, &identity, &mut PriorityArbiter::new());
    println!("unmodified {params} on the identity permutation:");
    println!(
        "  survivors per stage: {:?}  (offered, after stage 1, after stage 2, delivered)",
        outcome.survivors()
    );
    println!(
        "  delivered {} / {} = {:.1}%",
        outcome.delivered_count(),
        outcome.offered(),
        100.0 * outcome.acceptance_rate()
    );

    // Why: every source of first-stage hyperbar k carries tag digit
    // d_1 = k, so 64 requests fight for one capacity-4 bucket.
    let tag_digit = params.tag_digit_for_stage(70, 1); // source/tag 70 sits on hyperbar 1
    println!("  e.g. tag 70 retires digit d_1 = {tag_digit} at stage 1, like all of hyperbar 1\n");

    // Figure 6: reorder retirement + inverse permutation at the output.
    let order = RetirementOrder::rotate_left(params.output_bits(), params.log2_b())?;
    let fixed = route_batch_reordered(&topology, &identity, &order, &mut PriorityArbiter::new());
    println!("with bit-rotated retirement and the inverse output stage (Corollary 2):");
    println!("  survivors per stage: {:?}", fixed.survivors());
    println!(
        "  delivered {} / {} = {:.1}%",
        fixed.delivered_count(),
        fixed.offered(),
        100.0 * fixed.acceptance_rate()
    );
    for &(source, output) in fixed.delivered() {
        assert_eq!(source, output, "compensation must restore the identity");
    }
    println!("  every message verified at its original destination");

    println!("\nThe two networks are identical in the average case but differ wildly on");
    println!("specific permutations — exactly the paper's point about Corollary 2.");
    Ok(())
}
