//! A shared-memory MIMD machine on an EDN (paper, Section 4).
//!
//! 256 processors share 256 memory modules through an EDN(16,4,4,3).
//! Processors issue uniform memory requests; a rejected request puts its
//! processor in the Waiting state, where it resubmits until satisfied.
//! The example sweeps the fresh-request rate and prints, side by side,
//! the Markov-model steady state (Eqs. 7-11) and the simulated system.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example mimd_shared_memory
//! ```

use edn::analytic::mimd::resubmission_fixed_point;
use edn::analytic::pa::probability_of_acceptance;
use edn::core::EdnError;
use edn::sim::{ArbiterKind, MimdSystem, ResubmitPolicy};
use edn::EdnParams;

fn main() -> Result<(), EdnError> {
    let params = EdnParams::new(16, 4, 4, 3)?;
    println!(
        "machine: {} processors sharing {} modules via {params}",
        params.inputs(),
        params.outputs()
    );
    println!();
    println!("  r     | PA(r)  PA'(r) |  qA model  qA sim |  bandwidth model  sim");
    println!("  ------+----------------+-------------------+----------------------");

    for rate in [0.1, 0.25, 0.5, 0.75, 1.0] {
        // The no-resubmission acceptance (Eq. 4) and the resubmission
        // fixed point (Eq. 10).
        let ignored = probability_of_acceptance(&params, rate);
        let model = resubmission_fixed_point(&params, rate, 1e-12, 100_000);

        // The simulated machine under the same assumptions.
        let mut machine = MimdSystem::new(
            params,
            rate,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            0x4D31,
        )?;
        let report = machine.run(300, 600);

        println!(
            "  {rate:<5.2} | {ignored:.3}  {:.3}  |  {:.3}     {:.3} |  {:8.1}        {:8.1}",
            model.pa_prime,
            model.q_active,
            1.0 - report.waiting_fraction,
            model.bandwidth,
            report.bandwidth,
        );
    }

    println!();
    println!("Reading the table: resubmission (PA') always costs acceptance relative to");
    println!("Eq. 4's PA, and the efficiency q_A — the paper's Eq. 11 — is the fraction");
    println!("of time a processor does useful work instead of waiting on the network.");
    Ok(())
}
