//! Quickstart: build an Expanded Delta Network, route traffic through it,
//! and compare what you measured with what the paper's model predicts.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use edn::analytic::pa::probability_of_acceptance;
use edn::core::EdnError;
use edn::traffic::Permutation;
use edn::{route_batch, EdnParams, EdnTopology, PriorityArbiter, RouteRequest, RoutingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), EdnError> {
    // 1. Describe the network: EDN(a, b, c, l) = l stages of H(a -> b x c)
    //    hyperbars plus a final stage of c x c crossbars. This one has 64
    //    ports and 16 distinct paths between any input/output pair.
    let params = EdnParams::new(16, 4, 4, 2)?;
    println!("network: {params}");
    println!(
        "  inputs = {}, outputs = {}",
        params.inputs(),
        params.outputs()
    );
    println!("  paths per pair = c^l = {}", params.path_count());

    // 2. Wire it up.
    let topology = EdnTopology::new(params);

    // 3. Any single message always reaches its destination (Theorem 1).
    let trace = topology.trace_path(5, 42, &[0, 0])?;
    println!(
        "\nTheorem 1: input 5 -> output {} via lines {:?}",
        trace.output(),
        trace.exit_lines()
    );

    // 4. Route a full random permutation in one circuit-switched cycle.
    let mut rng = StdRng::seed_from_u64(2024);
    let permutation = Permutation::random(params.inputs(), &mut rng);
    let requests: Vec<RouteRequest> = permutation.to_requests();
    let outcome = route_batch(&topology, &requests, &mut PriorityArbiter::new());
    println!(
        "\nrandom permutation: {} of {} delivered in one pass (acceptance {:.3})",
        outcome.delivered_count(),
        outcome.offered(),
        outcome.acceptance_rate()
    );

    // 5. Compare with the paper's analytic prediction for uniform traffic.
    let pa = probability_of_acceptance(&params, 1.0);
    println!("Eq. 4 predicts PA(1) = {pa:.3} under uniform full load");

    // 6. Every delivered message really is where the permutation sent it.
    for &(source, output) in outcome.delivered() {
        assert_eq!(output, permutation.apply(source));
    }
    println!("\nall delivered messages verified at their destinations");

    // 7. For anything beyond a one-off cycle, hold a RoutingEngine: it is
    //    built once and reuses every per-cycle buffer, so repeated routing
    //    is allocation-free (this is what the simulators in `edn::sim` do).
    let mut engine = RoutingEngine::from_params(params);
    let mut arbiter = PriorityArbiter::new();
    let mut permutation = permutation;
    let mut batch = requests;
    let mut delivered_total = 0usize;
    let cycles = 1000;
    for _ in 0..cycles {
        permutation.randomize_in_place(&mut rng);
        permutation.fill_requests(&mut batch);
        delivered_total += engine.route(&batch, &mut arbiter).delivered_count();
    }
    println!(
        "engine: {cycles} random permutations routed, mean acceptance {:.3}",
        delivered_total as f64 / (cycles * batch.len()) as f64
    );
    Ok(())
}
