//! Sequence helpers.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Uniformly shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let pick = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, pick);
        }
    }
}
