//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate implements exactly the subset of the rand 0.8
//! API the workspace uses: [`Rng::gen_bool`] / [`Rng::gen_range`], the
//! seedable [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The
//! generator behind it is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, but every consumer in this workspace
//! treats the stream as an opaque deterministic source, so only quality
//! and reproducibility matter, not the exact values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A low-level uniform random source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        // 53 uniform mantissa bits; exact for p = 0 and p = 1.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform sample from `range` (`start..end` or `start..=end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x: u64 = rng.gen_range(5..=6);
            assert!((5..=6).contains(&x));
        }
        let f: f64 = rng.gen_range(-2.0..2.0);
        assert!((-2.0..2.0).contains(&f));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u64> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(
            data, sorted,
            "a 100-element shuffle is virtually never the identity"
        );
    }
}
