//! Concrete generators.

use crate::{RngCore, SeedableRng};

pub mod mock {
    //! Deterministic non-random generators for tests.

    use crate::RngCore;

    /// Yields `initial`, `initial + increment`, `initial + 2*increment`, …
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates the arithmetic sequence starting at `initial`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let value = self.value;
            self.value = self.value.wrapping_add(self.increment);
            value
        }
    }
}

/// The workspace's standard deterministic RNG: xoshiro256** seeded via
/// SplitMix64.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
/// cryptographically secure; it is a fast, high-quality statistical
/// generator, which is all the simulators need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
