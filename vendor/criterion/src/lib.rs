//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion 0.5 API this workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for ~`warm_up` time,
//! then `sample_size` samples are taken, each timing a batch of
//! iterations sized so one sample lasts roughly a millisecond. The
//! median sample is reported as ns/iter (the median is robust against
//! scheduler noise on shared machines). Results are printed to stdout and,
//! when `CRITERION_JSON` names a file, appended to it as JSON lines —
//! `{"id": ..., "ns_per_iter": ..., "throughput_elems_per_s": ...}` —
//! so experiment drivers can consume the numbers programmatically.

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration run before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks one function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self.sample_size, self.warm_up, &mut f);
        report.print(&id.full_name(), None);
        self
    }
}

/// A set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the element/byte count one iteration processes, enabling
    /// derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_bench(samples, self.criterion.warm_up, &mut f);
        report.print(
            &format!("{}/{}", self.name, id.full_name()),
            self.throughput,
        );
        self
    }

    /// Benchmarks a closure that also receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |bencher| f(bencher, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a bare parameter (group name carries the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(parameter) if self.name.is_empty() => parameter.clone(),
            Some(parameter) => format!("{}/{}", self.name, parameter),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units of work per iteration, for derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f` (call once per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    median_ns: f64,
}

impl Report {
    fn print(&self, id: &str, throughput: Option<Throughput>) {
        let mut line = format!("{id:<56} {:>14.1} ns/iter", self.median_ns);
        if let Some(Throughput::Elements(elems)) = throughput {
            let rate = elems as f64 / (self.median_ns * 1e-9);
            line.push_str(&format!("  {:>14.0} elem/s", rate));
        }
        if let Some(Throughput::Bytes(bytes)) = throughput {
            let rate = bytes as f64 / (self.median_ns * 1e-9);
            line.push_str(&format!("  {:>14.0} B/s", rate));
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let elems_per_s = match throughput {
                Some(Throughput::Elements(elems)) => {
                    format!("{:.1}", elems as f64 / (self.median_ns * 1e-9))
                }
                _ => "null".to_string(),
            };
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\": \"{id}\", \"ns_per_iter\": {:.1}, \"throughput_elems_per_s\": {elems_per_s}}}",
                    self.median_ns
                );
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(samples: usize, warm_up: Duration, f: &mut F) -> Report {
    // Warm up and calibrate the per-sample iteration count so each sample
    // runs for roughly a millisecond.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        f(&mut bencher);
        if bencher.iters > 0 && !bencher.elapsed.is_zero() {
            per_iter = bencher.elapsed / bencher.iters as u32;
        }
        let target = Duration::from_millis(1);
        let next = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        bencher.iters = next;
    }

    let mut ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = ns[ns.len() / 2];
    Report { median_ns }
}

/// Declares a group of benchmark functions, with an optional custom
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
