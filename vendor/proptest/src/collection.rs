//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` of values from `element`, with length drawn uniformly from
/// `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty size range");
    VecStrategy { element, sizes }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.sizes.end - self.sizes.start) as u64;
        let len = self.sizes.start + (rng.next_u64() % span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut candidates = Vec::new();
        // Shorter first: half the length, then one element less (both
        // clamped to the minimum size).
        let mut lens = vec![value.len() / 2, value.len().saturating_sub(1)];
        lens.dedup();
        for len in lens {
            if len >= self.sizes.start && len < value.len() {
                candidates.push(value[..len].to_vec());
            }
        }
        // Then element-wise: each position replaced by its simplest
        // shrink candidate.
        for (index, element) in value.iter().enumerate() {
            if let Some(simpler) = self.element.shrink(element).into_iter().next() {
                let mut candidate = value.clone();
                candidate[index] = simpler;
                candidates.push(candidate);
            }
        }
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_shortens_then_simplifies_elements() {
        let strategy = vec(0u64..100, 2..10);
        let candidates = strategy.shrink(&vec![9, 8, 7, 6]);
        // Half-length and one-shorter prefixes come first.
        assert_eq!(candidates[0], vec![9, 8]);
        assert_eq!(candidates[1], vec![9, 8, 7]);
        // Element-wise shrinks keep the length.
        assert!(candidates.contains(&vec![0, 8, 7, 6]));
        assert!(candidates.contains(&vec![9, 8, 7, 0]));
        // The minimum size is respected.
        let minimal = strategy.shrink(&vec![0, 0]);
        assert!(minimal.iter().all(|c| c.len() >= 2));
    }
}
