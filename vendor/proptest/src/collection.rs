//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` of values from `element`, with length drawn uniformly from
/// `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty size range");
    VecStrategy { element, sizes }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.sizes.end - self.sizes.start) as u64;
        let len = self.sizes.start + (rng.next_u64() % span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
