//! The [`any`] strategy for types with a canonical full-range
//! distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Produces uniformly distributed values over all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical [`any`] distribution.
pub trait Arbitrary: Clone + std::fmt::Debug {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of `value`, simplest first (for the
    /// shrinker); defaults to none.
    fn simplify(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::simplify(value)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty => $draw:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                #[allow(clippy::redundant_closure_call)]
                ($draw)(rng)
            }

            fn simplify(value: &Self) -> Vec<Self> {
                let mut candidates = Vec::new();
                if *value > 0 {
                    candidates.push(0);
                    let half = value / 2;
                    if half > 0 {
                        candidates.push(half);
                    }
                    if value - 1 > half {
                        candidates.push(value - 1);
                    }
                }
                candidates
            }
        }
    )*};
}

arbitrary_uint! {
    u64 => |rng: &mut TestRng| rng.next_u64(),
    u32 => |rng: &mut TestRng| (rng.next_u64() >> 32) as u32,
    u16 => |rng: &mut TestRng| (rng.next_u64() >> 48) as u16,
    u8 => |rng: &mut TestRng| (rng.next_u64() >> 56) as u8,
    usize => |rng: &mut TestRng| rng.next_u64() as usize,
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }

    fn simplify(value: &Self) -> Vec<Self> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_simplification_descends_toward_zero() {
        assert_eq!(u64::simplify(&100), vec![0, 50, 99]);
        assert_eq!(u64::simplify(&1), vec![0]);
        assert!(u64::simplify(&0).is_empty());
        assert_eq!(u64::simplify(&2), vec![0, 1]);
    }

    #[test]
    fn bool_simplifies_to_false() {
        assert_eq!(bool::simplify(&true), vec![false]);
        assert!(bool::simplify(&false).is_empty());
    }
}
