//! The runner-side types: the per-test RNG and case outcome.

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` and is resampled.
    Reject(String),
    /// The case failed a `prop_assert*!`.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Constructs a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
            TestCaseError::Fail(reason) => write!(f, "failed: {reason}"),
        }
    }
}

/// Upper bound on greedy shrink descent steps, a runaway guard far above
/// any realistic descent depth.
const MAX_SHRINK_STEPS: u32 = 1024;

/// Pins a check closure's argument to `strategy`'s value type, so the
/// `proptest!` macro can write `|candidate| ...` without naming the
/// (unnameable) tuple-of-values type.
pub fn constrain_check<S, F>(_strategy: &S, check: F) -> F
where
    S: crate::strategy::Strategy,
    F: FnMut(&S::Value) -> Result<(), TestCaseError>,
{
    check
}

/// Greedily shrinks a failing input: repeatedly replaces it with the
/// first [`Strategy::shrink`] candidate that still fails, until no
/// candidate fails (a local minimum) or [`MAX_SHRINK_STEPS`] is reached.
///
/// `check` re-runs the property body; a candidate counts as "still
/// failing" only on [`TestCaseError::Fail`] — rejected candidates are
/// skipped. Returns the minimal failing value, its failure message, and
/// the number of accepted shrink steps.
pub fn shrink_failure<S, C>(
    strategy: &S,
    initial: S::Value,
    initial_message: String,
    check: &mut C,
) -> (S::Value, String, u32)
where
    S: crate::strategy::Strategy,
    C: FnMut(&S::Value) -> Result<(), TestCaseError>,
{
    let mut best = initial;
    let mut best_message = initial_message;
    let mut steps = 0u32;
    'descend: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&best) {
            if let Err(TestCaseError::Fail(message)) = check(&candidate) {
                best = candidate;
                best_message = message;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (best, best_message, steps)
}

/// Number of accepted cases each property runs (`PROPTEST_CASES`,
/// default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The deterministic per-test random source (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// A generator seeded from the test's fully qualified name, so every
    /// test sees a reproducible but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        Self::from_seed(hash)
    }

    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// An independent child generator (used by `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        Self::from_seed(self.next_u64())
    }

    /// A uniformly random value of `T` (mirrors rand 0.9's `Rng::random`).
    pub fn random<T: RandomValue>(&mut self) -> T {
        T::random_from(self)
    }
}

/// Types [`TestRng::random`] can produce.
pub trait RandomValue {
    /// Draws one uniform value.
    fn random_from(rng: &mut TestRng) -> Self;
}

impl RandomValue for u64 {
    fn random_from(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl RandomValue for u32 {
    fn random_from(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl RandomValue for bool {
    fn random_from(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
