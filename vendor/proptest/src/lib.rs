//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, `prop_assert*` / `prop_assume`
//! macros, range / tuple / [`Just`](strategy::Just) / [`any`](arbitrary::any)
//! strategies, [`collection::vec`], and the `prop_filter_map` /
//! `prop_perturb` / `prop_map` combinators.
//!
//! It is a random-sampling property runner with minimal input shrinking:
//! each test generates `PROPTEST_CASES` (default 64) accepted cases from
//! a per-test deterministic RNG; on the first assertion failure the
//! runner greedily shrinks the failing inputs through
//! [`Strategy::shrink`](strategy::Strategy::shrink) candidates (ranges
//! shrink toward their floor, collections shorten, tuples shrink
//! component-wise) and reports the **minimal failing input** alongside
//! the original case number.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Each `fn name(pattern in strategy, ...) { body }` item expands to a
/// `#[test]` that repeatedly samples the strategies and runs the body;
/// `prop_assume!` rejections are resampled. An assertion failure is
/// first greedily shrunk through the strategies'
/// [`shrink`](strategy::Strategy::shrink) candidates, then aborts with
/// the case number and the minimal failing input.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                // All per-case strategies as one tuple strategy, so the
                // shrinker sees (and shrinks) the full input vector.
                let __strategy = ($(&$strat,)*);
                let mut __check = $crate::test_runner::constrain_check(&__strategy, |__candidate| {
                    let ($($pat,)*) = ::core::clone::Clone::clone(__candidate);
                    (|| { $body ::core::result::Result::Ok(()) })()
                });
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts < (cases as u64) * 1000 + 1000,
                        "proptest {}: too many rejected samples ({} attempts for {} cases)",
                        stringify!($name), attempts, cases
                    );
                    let __vals = match $crate::strategy::Strategy::generate(&__strategy, &mut rng) {
                        ::core::option::Option::Some(value) => value,
                        ::core::option::Option::None => continue,
                    };
                    match __check(&__vals) {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            continue
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            let (minimal, minimal_msg, steps) = $crate::test_runner::shrink_failure(
                                &__strategy, __vals, msg, &mut __check,
                            );
                            panic!(
                                "proptest {} failed at case #{}: {}\n  minimal failing input ({} shrink steps): {:?}",
                                stringify!($name), accepted, minimal_msg, steps, minimal
                            )
                        }
                    }
                }
            }
        )*
    };
}

/// Rejects the current case (it is resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)*), left, right
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}
