//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, `prop_assert*` / `prop_assume`
//! macros, range / tuple / [`Just`](strategy::Just) / [`any`](arbitrary::any)
//! strategies, [`collection::vec`], and the `prop_filter_map` /
//! `prop_perturb` / `prop_map` combinators.
//!
//! It is a straight random-sampling property runner: each test generates
//! `PROPTEST_CASES` (default 64) accepted cases from a per-test
//! deterministic RNG and fails with the offending inputs' case number on
//! the first assertion failure. There is no shrinking — failures report
//! the raw sampled values instead.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Each `fn name(pattern in strategy, ...) { body }` item expands to a
/// `#[test]` that repeatedly samples the strategies and runs the body;
/// `prop_assume!` rejections are resampled, assertion failures abort with
/// the case number.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts < (cases as u64) * 1000 + 1000,
                        "proptest {}: too many rejected samples ({} attempts for {} cases)",
                        stringify!($name), attempts, cases
                    );
                    $(
                        let $pat = match $crate::strategy::Strategy::generate(&$strat, &mut rng) {
                            ::core::option::Option::Some(value) => value,
                            ::core::option::Option::None => continue,
                        };
                    )*
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match result {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            continue
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case #{}: {}",
                                stringify!($name), accepted, msg
                            )
                        }
                    }
                }
            }
        )*
    };
}

/// Rejects the current case (it is resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)*), left, right
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}
