//! The [`Strategy`] trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// `generate` returns `None` when the drawn value is rejected (e.g. by
/// [`Strategy::prop_filter_map`]); the runner resamples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` to reject the sample.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values, rejecting those the closure maps to `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, fun: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            fun,
            _reason: reason,
        }
    }

    /// Maps generated values.
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, fun }
    }

    /// Transforms generated values with access to an independent RNG.
    fn prop_perturb<O, F>(self, fun: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { source: self, fun }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    fun: F,
    _reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.source.generate(rng).and_then(&self.fun)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.source.generate(rng).map(&self.fun)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        let value = self.source.generate(rng)?;
        let fork = rng.fork();
        Some((self.fun)(value, fork))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + (rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(start + (rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        Some(self.start + unit * (self.end - self.start))
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // 2^53 + 1 equally spaced points so both endpoints are reachable.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        Some(start + unit * (end - start))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
