//! The [`Strategy`] trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// `generate` returns `None` when the drawn value is rejected (e.g. by
/// [`Strategy::prop_filter_map`]); the runner resamples.
///
/// `shrink` proposes strictly "smaller" candidate values for a failing
/// input; the runner greedily descends through candidates that still fail
/// until none do, so failures are reported with a minimal counterexample.
/// Primitive strategies (ranges, tuples, [`collection::vec`]
/// (crate::collection::vec), [`any`](crate::arbitrary::any)) shrink;
/// mapped/filtered/perturbed strategies cannot invert their closures and
/// report the original failing value unchanged.
pub trait Strategy {
    /// The type of generated values (cloneable so the shrinker can replay
    /// candidates, debuggable so failures can print them).
    type Value: Clone + std::fmt::Debug;

    /// Draws one value, or `None` to reject the sample.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Candidate simplifications of `value`, simplest first. Every
    /// candidate must itself be producible by this strategy. The default
    /// is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values, rejecting those the closure maps to `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, fun: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            fun,
            _reason: reason,
        }
    }

    /// Maps generated values.
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, fun }
    }

    /// Transforms generated values with access to an independent RNG.
    fn prop_perturb<O, F>(self, fun: F) -> Perturb<Self, F>
    where
        Self: Sized,
        O: Clone + std::fmt::Debug,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { source: self, fun }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    fun: F,
    _reason: &'static str,
}

impl<S: Strategy, O: Clone + std::fmt::Debug, F: Fn(S::Value) -> Option<O>> Strategy
    for FilterMap<S, F>
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.source.generate(rng).and_then(&self.fun)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O: Clone + std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.source.generate(rng).map(&self.fun)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O: Clone + std::fmt::Debug, F: Fn(S::Value, TestRng) -> O> Strategy
    for Perturb<S, F>
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        let value = self.source.generate(rng)?;
        let fork = rng.fork();
        Some((self.fun)(value, fork))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + (rng.next_u64() % span) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(start + (rng.next_u64() % (span + 1)) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Integer shrink candidates between `floor` and `value`, simplest first:
/// the floor itself, the midpoint, and the predecessor.
fn shrink_toward<T>(floor: T, value: T) -> Vec<T>
where
    T: Copy + PartialOrd + core::ops::Add<Output = T> + core::ops::Sub<Output = T> + HalfStep,
{
    let mut candidates = Vec::new();
    if value > floor {
        let mid = floor + (value - floor).half();
        for candidate in [floor, mid, value - T::one()] {
            if candidate < value && !candidates.contains(&candidate) {
                candidates.push(candidate);
            }
        }
    }
    candidates
}

/// Halving and unit steps for [`shrink_toward`].
trait HalfStep: Sized {
    /// `self / 2`.
    fn half(self) -> Self;
    /// The unit value.
    fn one() -> Self;
}

macro_rules! half_step {
    ($($t:ty),*) => {$(
        impl HalfStep for $t {
            fn half(self) -> Self {
                self / 2
            }
            fn one() -> Self {
                1
            }
        }
    )*};
}

half_step!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        Some(self.start + unit * (self.end - self.start))
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_float_toward(self.start, *value)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // 2^53 + 1 equally spaced points so both endpoints are reachable.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        Some(start + unit * (end - start))
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_float_toward(*self.start(), *value)
    }
}

/// Float shrink candidates: the range floor, then the midpoint toward it.
fn shrink_float_toward(floor: f64, value: f64) -> Vec<f64> {
    let mut candidates = Vec::new();
    if value > floor {
        candidates.push(floor);
        let mid = floor + (value - floor) / 2.0;
        if mid > floor && mid < value {
            candidates.push(mid);
        }
    }
    candidates
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut candidates = Vec::new();
                $(
                    for component in self.$idx.shrink(&value.$idx) {
                        let mut candidate = value.clone();
                        candidate.$idx = component;
                        candidates.push(candidate);
                    }
                )+
                candidates
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_shrinks_toward_start() {
        let strategy = 3u64..100;
        let candidates = strategy.shrink(&57);
        assert_eq!(candidates, vec![3, 30, 56]);
        assert!(strategy.shrink(&3).is_empty(), "floor cannot shrink");
        // Adjacent values produce no duplicates.
        assert_eq!(strategy.shrink(&4), vec![3]);
    }

    #[test]
    fn inclusive_range_shrinks_toward_start() {
        let candidates = (10u32..=20).shrink(&20);
        assert_eq!(candidates, vec![10, 15, 19]);
    }

    #[test]
    fn float_range_shrinks_toward_start() {
        let candidates = (0.0..1.0).shrink(&0.5);
        assert_eq!(candidates, vec![0.0, 0.25]);
        assert!((0.0..1.0).shrink(&0.0).is_empty());
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let strategy = (0u64..10, 0u32..10);
        let candidates = strategy.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
        assert!(candidates.iter().all(|&(a, b)| (a, b) != (4, 6)));
    }

    #[test]
    fn combinators_do_not_shrink() {
        let mapped = (0u64..10).prop_map(|x| x * 2);
        assert!(mapped.shrink(&8).is_empty());
        let just = Just(41u64);
        assert!(just.shrink(&41).is_empty());
    }
}
