//! End-to-end shrinking: failing properties must report a *minimal*
//! counterexample, not the raw sampled value.

use proptest::prelude::*;

// Deliberately failing properties, declared without `#[test]` so they can
// be invoked under `catch_unwind` and their panic payloads inspected.
proptest! {
    fn fails_from_ten_up(x in 0u64..1000) {
        prop_assert!(x < 10, "x = {x} is too big");
    }

    fn fails_on_long_vectors(values in proptest::collection::vec(0u64..50, 1..40)) {
        prop_assert!(values.len() < 4);
    }

    fn fails_jointly(pair in (0u64..100, 0u64..100)) {
        let (a, b) = pair;
        prop_assert!(a + b < 30);
    }
}

/// Runs `test`, returning the panic message it must produce.
fn panic_message(test: fn()) -> String {
    let result = std::panic::catch_unwind(test);
    let payload = result.expect_err("property must fail");
    if let Some(text) = payload.downcast_ref::<String>() {
        return text.clone();
    }
    payload
        .downcast_ref::<&str>()
        .expect("panic payload is a string")
        .to_string()
}

#[test]
fn scalar_failures_shrink_to_the_boundary() {
    let message = panic_message(fails_from_ten_up);
    // The greedy descent over {floor, midpoint, predecessor} candidates
    // terminates exactly at the smallest failing value, 10.
    assert!(
        message.contains("minimal failing input") && message.contains("(10,)"),
        "unexpected message: {message}"
    );
}

#[test]
fn vector_failures_shrink_to_the_shortest_failing_length() {
    let message = panic_message(fails_on_long_vectors);
    // Shortening stops at length 4; element-wise shrinking then zeroes
    // every entry.
    assert!(
        message.contains("minimal failing input") && message.contains("[0, 0, 0, 0]"),
        "unexpected message: {message}"
    );
}

#[test]
fn joint_failures_shrink_every_component() {
    let message = panic_message(fails_jointly);
    // Both components shrink until a + b is barely >= 30; the first
    // component that can reach its floor does.
    let minimal = message
        .split("minimal failing input")
        .nth(1)
        .expect("shrink report present");
    let digits: Vec<u64> = minimal
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    // Layout: (steps): ((a, b),) -> [steps, a, b].
    assert_eq!(digits.len(), 3, "unexpected report: {minimal}");
    let (a, b) = (digits[1], digits[2]);
    assert_eq!(a + b, 30, "not minimal: {minimal}");
}

#[test]
fn passing_properties_are_unaffected() {
    proptest! {
        fn always_holds(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert!(usize::from(flag) <= 1);
        }
    }
    always_holds();
}

#[test]
fn shrink_candidates_are_regeneratable() {
    // Every candidate a range strategy proposes stays inside the range.
    let strategy = 5u64..50;
    for value in [6u64, 25, 49] {
        for candidate in strategy.shrink(&value) {
            assert!((5..50).contains(&candidate), "{candidate} escaped range");
            assert!(candidate < value, "candidate must simplify");
        }
    }
}
